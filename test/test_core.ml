(* Tests for the mpicd core: custom datatype API + point-to-point. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Dt = Mpicd_datatype.Datatype
module Custom = Mpicd.Custom
module Mpi = Mpicd.Mpi

let check_int = Alcotest.(check int)

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 13 + 5) land 0xff)
  done;
  b

(* --- custom datatypes used across the tests --- *)

(* An int array serialized as little-endian i32s, with instrumentation
   for the state lifecycle.  A pure pack/unpack type (no regions). *)
let int_array_dt ?(state_log = ref []) () : int array Custom.t =
  Custom.create
    {
      state =
        (fun _arr ~count:_ ->
          state_log := `Create :: !state_log;
          ());
      state_free = (fun () -> state_log := `Free :: !state_log);
      query = (fun () arr ~count -> 4 * Array.length arr * count);
      pack =
        (fun () arr ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) ((4 * Array.length arr) - offset) in
          (* byte-granular packing, robust to unaligned fragments *)
          for i = 0 to len - 1 do
            let byte_index = offset + i in
            let v = Int32.of_int arr.(byte_index / 4) in
            let shifted = Int32.shift_right_logical v (8 * (byte_index mod 4)) in
            Buf.set_u8 dst i (Int32.to_int shifted land 0xff)
          done;
          len);
      unpack =
        (fun () arr ~count:_ ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            let byte_index = offset + i in
            let word = byte_index / 4 and shift = 8 * (byte_index mod 4) in
            let cur = Int32.of_int arr.(word) in
            let mask = Int32.shift_left 0xFFl shift in
            let v =
              Int32.logor
                (Int32.logand cur (Int32.lognot mask))
                (Int32.shift_left (Int32.of_int (Buf.get_u8 src i)) shift)
            in
            arr.(word) <- Int32.to_int v land 0xFFFFFFFF
          done);
      region_count = None;
      regions = None;
    }

(* A buffer list exposed purely as zero-copy regions, with a packed
   header of per-region lengths (i32 each) — the double-vec shape. *)
let regions_dt () : Buf.t list Custom.t =
  Custom.create
    {
      state = (fun _ ~count:_ -> ());
      state_free = ignore;
      query = (fun () parts ~count:_ -> 4 * List.length parts);
      pack =
        (fun () parts ~count:_ ~offset ~dst ->
          assert (offset mod 4 = 0);
          let arr = Array.of_list parts in
          let len = min (Buf.length dst) ((4 * Array.length arr) - offset) in
          assert (len mod 4 = 0);
          for i = 0 to (len / 4) - 1 do
            Buf.set_i32 dst (4 * i)
              (Int32.of_int (Buf.length arr.((offset / 4) + i)))
          done;
          len);
      unpack =
        (fun () parts ~count:_ ~offset ~src ->
          (* verify the announced lengths match the local layout *)
          let arr = Array.of_list parts in
          for i = 0 to (Buf.length src / 4) - 1 do
            let announced = Int32.to_int (Buf.get_i32 src (4 * i)) in
            if announced <> Buf.length arr.((offset / 4) + i) then
              raise (Custom.Error 99)
          done);
      region_count = Some (fun () parts ~count:_ -> List.length parts);
      regions = Some (fun () parts ~count:_ -> Array.of_list parts);
    }

(* --- basic world / p2p --- *)

let test_world_basics () =
  let w = Mpi.create_world ~size:4 () in
  check_int "size" 4 (Mpi.world_size w);
  Mpi.run w (fun comm ->
      check_int "comm size" 4 (Mpi.size comm);
      Alcotest.(check bool) "rank in range" true
        (Mpi.rank comm >= 0 && Mpi.rank comm < 4))

let test_bad_world () =
  Alcotest.check_raises "size 0" (Invalid_argument "Mpi.create_world: size must be >= 1")
    (fun () -> ignore (Mpi.create_world ~size:0 ()))

let test_bytes_roundtrip () =
  let w = Mpi.create_world ~size:2 () in
  let src = pattern 2000 in
  let dst = Buf.create 2000 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:5 (Mpi.Bytes src)
      else begin
        let st = Mpi.recv comm ~source:0 ~tag:5 (Mpi.Bytes dst) in
        check_int "source" 0 st.source;
        check_int "tag" 5 st.tag;
        check_int "len" 2000 st.len;
        Alcotest.(check bool) "payload" true (Buf.equal src dst)
      end)

let test_any_source_any_tag () =
  let w = Mpi.create_world ~size:3 () in
  Mpi.run w (fun comm ->
      match Mpi.rank comm with
      | 0 ->
          let d = Buf.create 4 in
          let st1 = Mpi.recv comm (Mpi.Bytes d) in
          let st2 = Mpi.recv comm (Mpi.Bytes d) in
          let sources = List.sort compare [ st1.source; st2.source ] in
          Alcotest.(check (list int)) "both senders seen" [ 1; 2 ] sources
      | r -> Mpi.send comm ~dst:0 ~tag:(100 + r) (Mpi.Bytes (pattern 4)))

let test_self_send () =
  let w = Mpi.create_world ~size:1 () in
  let src = pattern 64 and dst = Buf.create 64 in
  Mpi.run w (fun comm ->
      let r = Mpi.isend comm ~dst:0 ~tag:1 (Mpi.Bytes src) in
      let st = Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes dst) in
      ignore (Mpi.wait r);
      check_int "len" 64 st.len;
      Alcotest.(check bool) "payload" true (Buf.equal src dst))

let test_typed_vector_roundtrip () =
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.vector ~count:8 ~blocklength:2 ~stride:4 Dt.int32 in
  let src = pattern (Dt.extent dt) in
  let dst = Buf.create (Dt.extent dt) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Typed { dt; count = 1; base = src })
      else begin
        let st = Mpi.recv comm (Mpi.Typed { dt; count = 1; base = dst }) in
        check_int "len = packed size" (Dt.size dt) st.len;
        Dt.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
            for i = disp to disp + len - 1 do
              if Buf.get_u8 src i <> Buf.get_u8 dst i then
                Alcotest.failf "typed byte %d differs" i
            done)
      end)

let test_typed_to_bytes_interop () =
  (* A typed send is a packed byte stream on the wire: a Bytes receive
     of the packed size must observe exactly the packed bytes. *)
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.vector ~count:3 ~blocklength:1 ~stride:2 Dt.int32 in
  let src = pattern (Dt.extent dt) in
  let expect = Buf.create (Dt.size dt) in
  ignore (Dt.pack dt ~count:1 ~src ~dst:expect);
  let dst = Buf.create (Dt.size dt) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Typed { dt; count = 1; base = src })
      else begin
        ignore (Mpi.recv comm (Mpi.Bytes dst));
        Alcotest.(check bool) "wire format is packed" true (Buf.equal expect dst)
      end)

let test_custom_pack_roundtrip () =
  let w = Mpi.create_world ~size:2 () in
  let send_log = ref [] and recv_log = ref [] in
  let dt_send = int_array_dt ~state_log:send_log () in
  let dt_recv = int_array_dt ~state_log:recv_log () in
  let src = Array.init 300 (fun i -> (i * 7919) land 0xFFFFFFF) in
  let dst = Array.make 300 0 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:1 (Mpi.Custom { dt = dt_send; obj = src; count = 1 })
      else begin
        let st = Mpi.recv comm (Mpi.Custom { dt = dt_recv; obj = dst; count = 1 }) in
        check_int "len" (4 * 300) st.len;
        Alcotest.(check (array int)) "values" src dst
      end);
  Alcotest.(check (list (of_pp Fmt.nop))) "send state lifecycle"
    [ `Free; `Create ] !send_log;
  Alcotest.(check (list (of_pp Fmt.nop))) "recv state lifecycle"
    [ `Free; `Create ] !recv_log

let test_custom_regions_roundtrip () =
  let w = Mpi.create_world ~size:2 () in
  let dt = regions_dt () in
  let parts = [ pattern 100; pattern 2048; pattern 17 ] in
  let sinks = [ Buf.create 100; Buf.create 2048; Buf.create 17 ] in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:2 (Mpi.Custom { dt; obj = parts; count = 1 })
      else begin
        let st = Mpi.recv comm (Mpi.Custom { dt; obj = sinks; count = 1 }) in
        check_int "len = header + regions" (12 + 100 + 2048 + 17) st.len;
        List.iter2
          (fun a b -> Alcotest.(check bool) "region" true (Buf.equal a b))
          parts sinks
      end)

let test_custom_regions_zero_copy () =
  (* Region bytes must never be memcpy'd by the CPU on either side:
     only the small packed header is. *)
  let w = Mpi.create_world ~size:2 () in
  let stats = Mpi.world_stats w in
  let dt = regions_dt () in
  let big = 1024 * 1024 in
  let parts = [ pattern big ] in
  let sinks = [ Buf.create big ] in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt; obj = parts; count = 1 })
      else ignore (Mpi.recv comm (Mpi.Custom { dt; obj = sinks; count = 1 })));
  Alcotest.(check bool) "payload delivered" true
    (Buf.equal (List.hd parts) (List.hd sinks));
  Alcotest.(check bool)
    (Printf.sprintf "copied bytes (%d) << payload" stats.bytes_copied)
    true
    (stats.bytes_copied < big / 100)

let test_custom_pack_error_propagates () =
  let w = Mpi.create_world ~size:2 () in
  let failing : unit Custom.t =
    Custom.create
      {
        state = (fun _ ~count:_ -> ());
        state_free = ignore;
        query = (fun () () ~count:_ -> 64);
        pack = (fun () () ~count:_ ~offset:_ ~dst:_ -> raise (Custom.Error 13));
        unpack = (fun () () ~count:_ ~offset:_ ~src:_ -> ());
        region_count = None;
        regions = None;
      }
  in
  let saw_error = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        match Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt = failing; obj = (); count = 1 }) with
        | () -> Alcotest.fail "expected Mpi_error"
        | exception Mpi.Mpi_error (Mpi.Callback_failed 13) ->
            saw_error := true;
            (* unblock the receiver *)
            Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (Buf.create 64))
      else ignore (Mpi.recv comm (Mpi.Bytes (Buf.create 64))));
  Alcotest.(check bool) "error seen" true !saw_error

let test_custom_unpack_error_propagates () =
  let w = Mpi.create_world ~size:2 () in
  let dt = regions_dt () in
  (* Receiver declares a different region length -> unpack raises 99. *)
  let parts = [ pattern 64 ] in
  let sinks = [ Buf.create 32; Buf.create 32 ] in
  let saw = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt; obj = parts; count = 1 })
      else
        match Mpi.recv comm (Mpi.Custom { dt; obj = sinks; count = 1 }) with
        | _ -> Alcotest.fail "expected error"
        | exception Mpi.Mpi_error (Mpi.Callback_failed 99) -> saw := true);
  Alcotest.(check bool) "error seen" true !saw

let test_truncation_error () =
  let w = Mpi.create_world ~size:2 () in
  let saw = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (pattern 100))
      else
        match Mpi.recv comm (Mpi.Bytes (Buf.create 10)) with
        | _ -> Alcotest.fail "expected truncation"
        | exception Mpi.Mpi_error (Mpi.Truncated { expected = 100; capacity = 10 })
          ->
            saw := true);
  Alcotest.(check bool) "truncation seen" true !saw

let test_isend_irecv_waitall () =
  let w = Mpi.create_world ~size:2 () in
  let n = 16 in
  let srcs = Array.init n (fun i -> pattern (64 + i)) in
  let dsts = Array.init n (fun i -> Buf.create (64 + i)) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let reqs =
          Array.to_list
            (Array.mapi (fun i b -> Mpi.isend comm ~dst:1 ~tag:i (Mpi.Bytes b)) srcs)
        in
        ignore (Mpi.waitall reqs)
      end
      else begin
        let reqs =
          Array.to_list
            (Array.mapi
               (fun i b -> Mpi.irecv comm ~source:0 ~tag:i (Mpi.Bytes b))
               dsts)
        in
        let sts = Mpi.waitall reqs in
        List.iteri (fun i (st : Mpi.status) -> check_int "len" (64 + i) st.len) sts;
        Array.iteri
          (fun i d ->
            Alcotest.(check bool) (Printf.sprintf "payload %d" i) true
              (Buf.equal srcs.(i) d))
          dsts
      end)

let test_wait_idempotent () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let r = Mpi.isend comm ~dst:1 ~tag:0 (Mpi.Bytes (pattern 8)) in
        let s1 = Mpi.wait r in
        let s2 = Mpi.wait r in
        check_int "same len" s1.len s2.len
      end
      else ignore (Mpi.recv comm (Mpi.Bytes (Buf.create 8))))

let test_probe_then_recv () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:42 (Mpi.Bytes (pattern 512))
      else begin
        let st = Mpi.probe comm ~source:0 ~tag:42 () in
        check_int "probed len" 512 st.len;
        check_int "probed tag" 42 st.tag;
        let dst = Buf.create st.len in
        let st2 = Mpi.recv comm ~source:0 ~tag:42 (Mpi.Bytes dst) in
        check_int "received len" 512 st2.len
      end)

let test_iprobe_none () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 1 then
        Alcotest.(check bool) "nothing pending" true
          (Mpi.iprobe comm ~source:0 () = None))

let test_mprobe_mrecv () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:9 (Mpi.Bytes (pattern 128))
      else begin
        let st, msg = Mpi.mprobe comm ~source:0 ~tag:9 () in
        check_int "mprobe len" 128 st.len;
        (* allocate based on the probed size — the mpi4py pattern *)
        let dst = Buf.create st.len in
        let st2 = Mpi.mrecv comm msg (Mpi.Bytes dst) in
        check_int "len" 128 st2.len
      end)

let test_barrier_ranks n =
  let w = Mpi.create_world ~size:n () in
  let counter = ref 0 in
  let after = ref (-1) in
  Mpi.run w (fun comm ->
      incr counter;
      Mpi.barrier comm;
      (* all ranks must have incremented before anyone passes *)
      if !after < 0 then after := !counter;
      Mpi.barrier comm);
  check_int "all arrived before release" n !after

let test_barrier_2 () = test_barrier_ranks 2
let test_barrier_4 () = test_barrier_ranks 4
let test_barrier_8 () = test_barrier_ranks 8

let test_internal_tags_isolated () =
  (* Internal-kind traffic must not match user receives. *)
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        Mpi.Internal.send_k comm Mpi.Internal.Internal ~dst:1 ~tag:7
          (Mpi.Bytes (pattern 4));
        Mpi.send comm ~dst:1 ~tag:7 (Mpi.Bytes (pattern 8))
      end
      else begin
        (* user recv posted first must match the user message (8B), not
           the earlier internal one (4B) *)
        let dst = Buf.create 8 in
        let st = Mpi.recv comm ~source:0 ~tag:7 (Mpi.Bytes dst) in
        check_int "user message" 8 st.len;
        let d2 = Buf.create 4 in
        let st2 =
          Mpi.Internal.recv_k comm Mpi.Internal.Internal ~source:0 ~tag:7
            (Mpi.Bytes d2)
        in
        check_int "internal message" 4 st2.len
      end)

let test_unpack_shuffle_out_of_order () =
  (* With inorder:false and the shuffle knob on, offset-based unpack
     must still reconstruct the data (fragments arrive out of order). *)
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_unpack_shuffle w ~seed:(Some 1234);
  let log = ref [] in
  let make_dt () : Buf.t Custom.t =
    Custom.create ~inorder:false
      {
        state = (fun _ ~count:_ -> ());
        state_free = ignore;
        query = (fun () b ~count:_ -> Buf.length b);
        pack =
          (fun () b ~count:_ ~offset ~dst ->
            let len = min (Buf.length dst) (Buf.length b - offset) in
            Buf.blit ~src:b ~src_pos:offset ~dst ~dst_pos:0 ~len;
            len);
        unpack =
          (fun () b ~count:_ ~offset ~src ->
            log := offset :: !log;
            Buf.blit ~src ~src_pos:0 ~dst:b ~dst_pos:offset
              ~len:(Buf.length src));
        region_count = None;
        regions = None;
      }
  in
  let n = 50 * 1024 in
  let src = pattern n and dst = Buf.create n in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt = make_dt (); obj = src; count = 1 })
      else
        ignore (Mpi.recv comm (Mpi.Custom { dt = make_dt (); obj = dst; count = 1 })));
  Alcotest.(check bool) "data reconstructed" true (Buf.equal src dst);
  let offsets = List.rev !log in
  let sorted = List.sort compare offsets in
  Alcotest.(check bool) "unpack really happened out of order" true
    (offsets <> sorted)

let test_buffer_size () =
  check_int "bytes" 10 (Mpi.buffer_size (Mpi.Bytes (Buf.create 10)));
  let dt = Dt.contiguous 3 Dt.int32 in
  check_int "typed" 24
    (Mpi.buffer_size (Mpi.Typed { dt; count = 2; base = Buf.create 24 }));
  let cdt = regions_dt () in
  check_int "custom = header + regions" (8 + 30)
    (Mpi.buffer_size
       (Mpi.Custom { dt = cdt; obj = [ Buf.create 10; Buf.create 20 ]; count = 1 }))

let test_bad_args () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        (match Mpi.send comm ~dst:5 ~tag:0 (Mpi.Bytes (Buf.create 1)) with
        | () -> Alcotest.fail "bad rank accepted"
        | exception Invalid_argument _ -> ());
        match Mpi.send comm ~dst:1 ~tag:(-3) (Mpi.Bytes (Buf.create 1)) with
        | () -> Alcotest.fail "bad tag accepted"
        | exception Invalid_argument _ -> ()
      end)

let test_sendrecv_ring () =
  let n = 4 in
  let w = Mpi.create_world ~size:n () in
  Mpi.run w (fun comm ->
      let r = Mpi.rank comm in
      let next = (r + 1) mod n and prev = (r + n - 1) mod n in
      let out = Buf.of_string (Printf.sprintf "%02d" r) in
      let inc = Buf.create 2 in
      let st =
        Mpi.sendrecv comm ~dst:next ~send_tag:0 (Mpi.Bytes out) ~source:prev
          ~recv_tag:0 (Mpi.Bytes inc)
      in
      check_int "source" prev st.source;
      Alcotest.(check string) "payload" (Printf.sprintf "%02d" prev)
        (Buf.to_string inc))

let test_request_test () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        (* rendezvous send cannot complete before the recv is posted *)
        let r = Mpi.isend comm ~dst:1 ~tag:0 (Mpi.Bytes (pattern (256 * 1024))) in
        Alcotest.(check bool) "not yet complete" true (Mpi.test r = None);
        let st = Mpi.wait r in
        check_int "len" (256 * 1024) st.len;
        Alcotest.(check bool) "test after completion" true
          (match Mpi.test r with Some s -> s.len = st.len | None -> false)
      end
      else begin
        Engine.sleep (Mpi.world_engine (Mpi.world_of comm)) 10_000.;
        ignore (Mpi.recv comm (Mpi.Bytes (Buf.create (256 * 1024))))
      end)

let test_waitany () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let r1 = Mpi.irecv comm ~source:1 ~tag:1 (Mpi.Bytes (Buf.create 4)) in
        let r2 = Mpi.irecv comm ~source:1 ~tag:2 (Mpi.Bytes (Buf.create 4)) in
        let idx, st = Mpi.waitany [ r1; r2 ] in
        Alcotest.(check bool) "an index" true (idx = 0 || idx = 1);
        check_int "len" 4 st.len;
        ignore (Mpi.waitall [ r1; r2 ])
      end
      else begin
        Mpi.send comm ~dst:0 ~tag:2 (Mpi.Bytes (pattern 4));
        Mpi.send comm ~dst:0 ~tag:1 (Mpi.Bytes (pattern 4))
      end);
  Alcotest.check_raises "empty waitany"
    (Invalid_argument "Mpi.waitany: empty request list") (fun () ->
      ignore (Mpi.waitany []))

let test_waitany_nonhead_first () =
  (* only the SECOND request ever completes: waitany must not block on
     the head *)
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let never = Mpi.irecv comm ~source:1 ~tag:99 (Mpi.Bytes (Buf.create 4)) in
        let soon = Mpi.irecv comm ~source:1 ~tag:1 (Mpi.Bytes (Buf.create 4)) in
        let idx, st = Mpi.waitany [ never; soon ] in
        check_int "second request won" 1 idx;
        check_int "len" 4 st.len;
        (* unblock the pending recv so the world can finish *)
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (Buf.create 1));
        ignore (Mpi.wait never)
      end
      else begin
        Mpi.send comm ~dst:0 ~tag:1 (Mpi.Bytes (pattern 4));
        ignore (Mpi.recv comm ~source:0 ~tag:0 (Mpi.Bytes (Buf.create 1)));
        Mpi.send comm ~dst:0 ~tag:99 (Mpi.Bytes (pattern 4))
      end)

let test_mpi_pack_unpack () =
  let w = Mpi.create_world ~size:1 () in
  Mpi.run w (fun comm ->
      let dt = Dt.vector ~count:4 ~blocklength:1 ~stride:2 Dt.int32 in
      let src = pattern (Dt.extent dt * 2) in
      let packed = Buf.create (2 * Mpi.pack_size dt ~count:1) in
      let p1 = Mpi.pack comm dt ~count:1 ~src ~dst:packed ~position:0 in
      check_int "position advances" (Dt.size dt) p1;
      let p2 =
        Mpi.pack comm dt ~count:1 ~src:(Buf.sub src ~pos:(Dt.extent dt) ~len:(Dt.extent dt))
          ~dst:packed ~position:p1
      in
      check_int "second position" (2 * Dt.size dt) p2;
      (* unpack both back *)
      let sink = Buf.create (Dt.extent dt * 2) in
      let q1 = Mpi.unpack comm dt ~count:1 ~src:packed ~position:0 ~dst:sink in
      let _q2 =
        Mpi.unpack comm dt ~count:1 ~src:packed ~position:q1
          ~dst:(Buf.sub sink ~pos:(Dt.extent dt) ~len:(Dt.extent dt))
      in
      Dt.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
          for i = disp to disp + len - 1 do
            if Buf.get_u8 src i <> Buf.get_u8 sink i then
              Alcotest.failf "byte %d differs" i
          done);
      (* bad position *)
      match Mpi.pack comm dt ~count:1 ~src ~dst:packed ~position:(Buf.length packed) with
      | _ -> Alcotest.fail "expected range error"
      | exception Invalid_argument _ -> ())

let test_many_ranks_ring () =
  (* 8-rank ring exchange: each rank sends to (r+1) mod n. *)
  let n = 8 in
  let w = Mpi.create_world ~size:n () in
  let payload r = Buf.of_string (Printf.sprintf "from-%d" r) in
  Mpi.run w (fun comm ->
      let r = Mpi.rank comm in
      let next = (r + 1) mod n and prev = (r + n - 1) mod n in
      let req = Mpi.isend comm ~dst:next ~tag:0 (Mpi.Bytes (payload r)) in
      let dst = Buf.create 6 in
      let st = Mpi.recv comm ~source:prev ~tag:0 (Mpi.Bytes dst) in
      ignore (Mpi.wait req);
      check_int "source" prev st.source;
      Alcotest.(check string) "payload" (Printf.sprintf "from-%d" prev)
        (Buf.to_string dst))


(* --- communicator split / dup --- *)

let test_comm_split_groups () =
  let n = 6 in
  let w = Mpi.create_world ~size:n () in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      (* even / odd split, reverse ordering within the odd group *)
      let color = me mod 2 in
      let key = if color = 1 then -me else me in
      let sub = Mpi.comm_split comm ~color ~key in
      check_int "subgroup size" 3 (Mpi.size sub);
      (* evens keep ascending order; odds are reversed *)
      let expect_rank =
        if color = 0 then me / 2 else (n - 1 - me) / 2
      in
      check_int
        (Printf.sprintf "world rank %d sub rank" me)
        expect_rank (Mpi.rank sub);
      (* p2p within the subgroup *)
      let next = (Mpi.rank sub + 1) mod Mpi.size sub in
      let prev = (Mpi.rank sub + Mpi.size sub - 1) mod Mpi.size sub in
      let out = Buf.of_string (Printf.sprintf "%d" color) in
      let inc = Buf.create 1 in
      let st =
        Mpi.sendrecv sub ~dst:next ~send_tag:0 (Mpi.Bytes out) ~source:prev
          ~recv_tag:0 (Mpi.Bytes inc)
      in
      check_int "source is subgroup-relative" prev st.source;
      (* the message stayed within our colour *)
      Alcotest.(check string) "same colour" (string_of_int color)
        (Buf.to_string inc))

let test_comm_dup_isolated_tag_space () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      let dup = Mpi.comm_dup comm in
      if Mpi.rank comm = 0 then begin
        (* same tag on both communicators: no cross-matching *)
        Mpi.send comm ~dst:1 ~tag:7 (Mpi.Bytes (Buf.of_string "world"));
        Mpi.send dup ~dst:1 ~tag:7 (Mpi.Bytes (Buf.of_string "dup!!"))
      end
      else begin
        (* receive in the opposite order: isolation must hold *)
        let b1 = Buf.create 5 in
        ignore (Mpi.recv dup ~source:0 ~tag:7 (Mpi.Bytes b1));
        Alcotest.(check string) "dup comm message" "dup!!" (Buf.to_string b1);
        let b2 = Buf.create 5 in
        ignore (Mpi.recv comm ~source:0 ~tag:7 (Mpi.Bytes b2));
        Alcotest.(check string) "world message" "world" (Buf.to_string b2)
      end)

let test_comm_split_collectives () =
  (* barrier and bcast work on a split communicator *)
  let w = Mpi.create_world ~size:4 () in
  Mpi.run w (fun comm ->
      let sub = Mpi.comm_split comm ~color:(Mpi.rank comm / 2) ~key:0 in
      Mpi.barrier sub;
      let b =
        if Mpi.rank sub = 0 then
          Buf.of_string (Printf.sprintf "c%d" (Mpi.rank comm / 2))
        else Buf.create 2
      in
      (* linear bcast via sub's p2p *)
      if Mpi.rank sub = 0 then
        for i = 1 to Mpi.size sub - 1 do
          Mpi.send sub ~dst:i ~tag:0 (Mpi.Bytes b)
        done
      else ignore (Mpi.recv sub ~source:0 ~tag:0 (Mpi.Bytes b));
      Alcotest.(check string) "subgroup payload"
        (Printf.sprintf "c%d" (Mpi.rank comm / 2))
        (Buf.to_string b))

(* --- randomized stress: message storms --- *)

(* Every ordered pair of ranks exchanges a random batch of messages
   with random sizes (spanning eager and rendezvous) and shuffled
   receive order (matching by tag); every payload must arrive intact.
   Exercises matching, unexpected queues, FIFO ordering and both
   protocols under load. *)
let storm_once ~seed ~nranks ~msgs_per_pair =
  let module Rng = Mpicd_simnet.Rng in
  let rng = Rng.create seed in
  let sizes =
    Array.init nranks (fun _ ->
        Array.init nranks (fun _ ->
            Array.init msgs_per_pair (fun _ ->
                match Rng.int rng 4 with
                | 0 -> 1 + Rng.int rng 64
                | 1 -> 1024 + Rng.int rng 4096
                | 2 -> 30_000 + Rng.int rng 10_000 (* straddles eager limit *)
                | _ -> 100_000 + Rng.int rng 100_000)))
  in
  let payload ~src ~dst ~k =
    let n = sizes.(src).(dst).(k) in
    let b = Buf.create n in
    for i = 0 to n - 1 do
      Buf.set_u8 b i ((i + (src * 7) + (dst * 13) + (k * 31)) land 0xff)
    done;
    b
  in
  let w = Mpi.create_world ~size:nranks () in
  let failures = ref 0 in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      (* post all sends nonblocking *)
      let sends = ref [] in
      for dst = 0 to nranks - 1 do
        for k = 0 to msgs_per_pair - 1 do
          sends :=
            Mpi.isend comm ~dst ~tag:k (Mpi.Bytes (payload ~src:me ~dst ~k))
            :: !sends
        done
      done;
      (* receive from every source, tags in a per-source shuffled order *)
      let order = Array.init msgs_per_pair (fun i -> i) in
      let rng' = Mpicd_simnet.Rng.create (seed + me) in
      for src = 0 to nranks - 1 do
        Mpicd_simnet.Rng.shuffle rng' order;
        Array.iter
          (fun k ->
            let n = sizes.(src).(me).(k) in
            let b = Buf.create n in
            let st = Mpi.recv comm ~source:src ~tag:k (Mpi.Bytes b) in
            if st.len <> n || not (Buf.equal b (payload ~src ~dst:me ~k)) then
              incr failures)
          order
      done;
      ignore (Mpi.waitall !sends));
  !failures

let test_message_storm () =
  check_int "4 ranks dense storm" 0 (storm_once ~seed:11 ~nranks:4 ~msgs_per_pair:6)

let prop_storm =
  QCheck.Test.make ~name:"core: random message storms deliver everything"
    ~count:8
    QCheck.(pair (int_range 2 5) (int_range 1 5))
    (fun (nranks, msgs) ->
      storm_once ~seed:((nranks * 100) + msgs) ~nranks ~msgs_per_pair:msgs = 0)


(* Property: for random derived datatypes, the wire stream of a Typed
   send equals Datatype.pack, and a custom datatype built from the same
   block layout produces the same bytes (cross-method equivalence over
   the full stack). *)
let gen_small_datatype =
  let open QCheck.Gen in
  let pred = oneofl [ Dt.byte; Dt.int16; Dt.int32; Dt.float64 ] in
  let rec go depth =
    if depth = 0 then pred
    else
      frequency
        [
          (2, pred);
          (2, map2 (fun n e -> Dt.contiguous n e) (1 -- 3) (go (depth - 1)));
          ( 2,
            map2
              (fun (c, b) e -> Dt.vector ~count:c ~blocklength:b ~stride:(b + 1) e)
              (pair (1 -- 3) (1 -- 2))
              (go (depth - 1)) );
        ]
  in
  go 2

let prop_comm_split_partitions =
  QCheck.Test.make ~name:"core: comm_split partitions the world" ~count:15
    QCheck.(pair (int_range 2 6) (int_range 0 1000))
    (fun (n, seed) ->
      let w = Mpi.create_world ~size:n () in
      let ok = ref true in
      Mpi.run w (fun comm ->
          let me = Mpi.rank comm in
          let color = (me * 31 + seed) mod 3 in
          let key = (seed - me) mod 5 in
          let sub = Mpi.comm_split comm ~color ~key in
          (* the subgroup size equals the number of world ranks sharing
             my colour *)
          let expected_size =
            List.length
              (List.filter
                 (fun r -> (r * 31 + seed) mod 3 = color)
                 (List.init n Fun.id))
          in
          if Mpi.size sub <> expected_size then ok := false;
          if Mpi.rank sub < 0 || Mpi.rank sub >= Mpi.size sub then ok := false;
          (* my world rank appears exactly where the sub comm says *)
          if Mpi.world_rank_of sub (Mpi.rank sub) <> me then ok := false;
          (* everyone in the subgroup can talk: token ring *)
          if Mpi.size sub > 1 then begin
            let next = (Mpi.rank sub + 1) mod Mpi.size sub in
            let prev = (Mpi.rank sub + Mpi.size sub - 1) mod Mpi.size sub in
            let out = Buf.of_string (Printf.sprintf "%03d" color) in
            let inc = Buf.create 3 in
            ignore
              (Mpi.sendrecv sub ~dst:next ~send_tag:0 (Mpi.Bytes out)
                 ~source:prev ~recv_tag:0 (Mpi.Bytes inc));
            if Buf.to_string inc <> Printf.sprintf "%03d" color then ok := false
          end);
      !ok)

let prop_wire_equivalence =
  QCheck.Test.make ~name:"core: typed and custom sends share the wire format"
    ~count:40
    (QCheck.make ~print:Dt.to_string gen_small_datatype)
    (fun dt ->
      let count = 2 in
      let need = Dt.ub dt + ((count - 1) * Dt.extent dt) + 1 in
      let src = pattern (max 1 need) in
      let expect = Buf.create (Dt.packed_size dt ~count) in
      ignore (Dt.pack dt ~count ~src ~dst:expect);
      QCheck.assume (Buf.length expect > 0);
      (* custom datatype generated from the same layout *)
      let custom_of_dt : Buf.t Custom.t =
        Custom.create
          {
            state = (fun _ ~count:_ -> ());
            state_free = ignore;
            query = (fun () _ ~count -> Dt.packed_size dt ~count);
            pack =
              (fun () base ~count ~offset ~dst ->
                Dt.pack_range dt ~count ~src:base ~packed_off:offset ~dst);
            unpack =
              (fun () base ~count ~offset ~src ->
                ignore
                  (Dt.unpack_range dt ~count ~src ~packed_off:offset ~dst:base));
            region_count = None;
            regions = None;
          }
      in
      let via_typed = Buf.create (Buf.length expect) in
      let via_custom = Buf.create (Buf.length expect) in
      let w = Mpi.create_world ~size:2 () in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then begin
            Mpi.send comm ~dst:1 ~tag:0 (Mpi.Typed { dt; count; base = src });
            Mpi.send comm ~dst:1 ~tag:1
              (Mpi.Custom { dt = custom_of_dt; obj = src; count })
          end
          else begin
            ignore (Mpi.recv comm ~tag:0 (Mpi.Bytes via_typed));
            ignore (Mpi.recv comm ~tag:1 (Mpi.Bytes via_custom))
          end);
      Buf.equal expect via_typed && Buf.equal expect via_custom)

let suite =
  let tc = Alcotest.test_case in
  ( "core",
    [
      tc "world basics" `Quick test_world_basics;
      tc "bad world size" `Quick test_bad_world;
      tc "bytes roundtrip" `Quick test_bytes_roundtrip;
      tc "any source / any tag" `Quick test_any_source_any_tag;
      tc "self send" `Quick test_self_send;
      tc "typed vector roundtrip" `Quick test_typed_vector_roundtrip;
      tc "typed->bytes wire interop" `Quick test_typed_to_bytes_interop;
      tc "custom pack roundtrip + state lifecycle" `Quick test_custom_pack_roundtrip;
      tc "custom regions roundtrip" `Quick test_custom_regions_roundtrip;
      tc "custom regions are zero-copy" `Quick test_custom_regions_zero_copy;
      tc "custom pack error propagates" `Quick test_custom_pack_error_propagates;
      tc "custom unpack error propagates" `Quick test_custom_unpack_error_propagates;
      tc "truncation error" `Quick test_truncation_error;
      tc "isend/irecv/waitall" `Quick test_isend_irecv_waitall;
      tc "wait idempotent" `Quick test_wait_idempotent;
      tc "probe then recv" `Quick test_probe_then_recv;
      tc "iprobe empty" `Quick test_iprobe_none;
      tc "mprobe + mrecv" `Quick test_mprobe_mrecv;
      tc "barrier 2 ranks" `Quick test_barrier_2;
      tc "barrier 4 ranks" `Quick test_barrier_4;
      tc "barrier 8 ranks" `Quick test_barrier_8;
      tc "internal tag isolation" `Quick test_internal_tags_isolated;
      tc "out-of-order unpack (inorder=false)" `Quick test_unpack_shuffle_out_of_order;
      tc "buffer_size" `Quick test_buffer_size;
      tc "bad arguments" `Quick test_bad_args;
      tc "sendrecv ring" `Quick test_sendrecv_ring;
      tc "request test (MPI_Test)" `Quick test_request_test;
      tc "waitany" `Quick test_waitany;
      tc "waitany non-head completes first" `Quick test_waitany_nonhead_first;
      tc "MPI_Pack/Unpack with position" `Quick test_mpi_pack_unpack;
      tc "8-rank ring" `Quick test_many_ranks_ring;
      tc "message storm" `Quick test_message_storm;
      tc "comm_split groups and ordering" `Quick test_comm_split_groups;
      tc "comm_dup isolates tag space" `Quick test_comm_dup_isolated_tag_space;
      tc "collectives on split comm" `Quick test_comm_split_collectives;
      QCheck_alcotest.to_alcotest prop_storm;
      QCheck_alcotest.to_alcotest prop_wire_equivalence;
      QCheck_alcotest.to_alcotest prop_comm_split_partitions;
    ] )
