let () =
  Alcotest.run "mpicd"
    [
      Test_buf.suite;
      Test_simnet.suite;
      Test_datatype.suite;
      Test_plan.suite;
      Test_normalize.suite;
      Test_ucx.suite;
      Test_obs.suite;
      Test_core.suite;
      Test_derive.suite;
      Test_pickle.suite;
      Test_objmsg.suite;
      Test_bench_types.suite;
      Test_ddtbench.suite;
      Test_collectives.suite;
      Test_capi.suite;
      Test_figures.suite;
      Test_serde.suite;
      Test_typed_mpi.suite;
      Test_threaded.suite;
      Test_device.suite;
      Test_check.suite;
      Test_faults.suite;
      Test_resilience.suite;
      Test_restart.suite;
    ]
