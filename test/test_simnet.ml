(* Tests for the discrete-event engine, heap, RNG, config and stats. *)

open Mpicd_simnet

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3. ~seq:0 "c";
  Heap.push h ~time:1. ~seq:1 "a";
  Heap.push h ~time:2. ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5. ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> check_int "fifo order at equal time" i v
    | None -> Alcotest.fail "empty"
  done

let test_heap_many () =
  let h = Heap.create () in
  let rng = Rng.create 42 in
  let n = 2000 in
  for i = 0 to n - 1 do
    Heap.push h ~time:(Rng.float rng 1000.) ~seq:i ()
  done;
  check_int "size" n (Heap.size h);
  let last = ref neg_infinity in
  for _ = 1 to n do
    match Heap.pop h with
    | Some (t, _, ()) ->
        Alcotest.(check bool) "monotone" true (t >= !last);
        last := t
    | None -> Alcotest.fail "underflow"
  done

(* Engine *)

let test_sleep_advances_clock () =
  let e = Engine.create () in
  let final = ref 0. in
  Engine.spawn e (fun () ->
      Engine.sleep e 100.;
      Engine.sleep e 50.;
      final := Engine.now e);
  Engine.run e;
  check_float "clock" 150. !final

let test_two_fibers_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = log := (tag, Engine.now e) :: !log in
  Engine.spawn e ~name:"a" (fun () ->
      note "a0";
      Engine.sleep e 10.;
      note "a1");
  Engine.spawn e ~name:"b" (fun () ->
      note "b0";
      Engine.sleep e 5.;
      note "b1");
  Engine.run e;
  let expected = [ ("a0", 0.); ("b0", 0.); ("b1", 5.); ("a1", 10.) ] in
  Alcotest.(check (list (pair string (float 1e-9))))
    "order" expected (List.rev !log)

let test_ivar_blocks () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let got = ref (-1) in
  let got_at = ref 0. in
  Engine.spawn e (fun () ->
      got := Engine.Ivar.read e iv;
      got_at := Engine.now e);
  Engine.spawn e (fun () ->
      Engine.sleep e 42.;
      Engine.Ivar.fill iv 7);
  Engine.run e;
  check_int "value" 7 !got;
  check_float "time" 42. !got_at

let test_ivar_double_fill () =
  let iv = Engine.Ivar.create () in
  Engine.Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Engine.Ivar.fill iv 2)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  let received = ref [] in
  Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        received := Engine.Mailbox.recv e mb :: !received
      done);
  Engine.spawn e (fun () ->
      Engine.Mailbox.send mb 1;
      Engine.sleep e 1.;
      Engine.Mailbox.send mb 2;
      Engine.Mailbox.send mb 3);
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_mailbox_buffering () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  Engine.Mailbox.send mb "x";
  check_int "buffered" 1 (Engine.Mailbox.length mb);
  Alcotest.(check (option string)) "try_recv" (Some "x")
    (Engine.Mailbox.try_recv mb);
  Alcotest.(check (option string)) "empty" None (Engine.Mailbox.try_recv mb);
  ignore e

let test_deadlock_detection () =
  let e = Engine.create () in
  let iv : int Engine.Ivar.t = Engine.Ivar.create () in
  Engine.spawn e ~name:"stuck" (fun () -> ignore (Engine.Ivar.read e iv));
  (match Engine.run e with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "mentions fiber" true
        (String.length msg > 0
        &&
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        contains msg "stuck"))

let test_at_callback () =
  let e = Engine.create () in
  let fired = ref 0. in
  Engine.at e ~delay:33. (fun () -> fired := Engine.now e);
  Engine.run e;
  check_float "at" 33. !fired

let test_spawn_from_fiber () =
  let e = Engine.create () in
  let result = ref 0 in
  Engine.spawn e (fun () ->
      Engine.sleep e 10.;
      Engine.spawn e (fun () ->
          Engine.sleep e 5.;
          result := int_of_float (Engine.now e)));
  Engine.run e;
  check_int "nested spawn time" 15 !result

let test_waitq_broadcast () =
  let e = Engine.create () in
  let wq = Engine.Waitq.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        let v = Engine.Waitq.wait e wq in
        count := !count + v)
  done;
  Engine.spawn e (fun () ->
      Engine.sleep e 1.;
      check_int "waiters" 5 (Engine.Waitq.waiters wq);
      ignore (Engine.Waitq.broadcast wq 10));
  Engine.run e;
  check_int "all resumed" 50 !count

let test_determinism () =
  let run_once () =
    let e = Engine.create () in
    let trace = Buffer.create 64 in
    for i = 0 to 9 do
      Engine.spawn e (fun () ->
          Engine.sleep e (float_of_int ((i * 7) mod 5));
          Buffer.add_string trace (Printf.sprintf "%d@%.0f;" i (Engine.now e)))
    done;
    Engine.run e;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float r 5.0 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 5.)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" orig sorted

let test_rng_split_independent () =
  let r = Rng.create 9 in
  let r2 = Rng.split r in
  let a = Rng.next64 r and b = Rng.next64 r2 in
  Alcotest.(check bool) "different streams" true (a <> b)

let test_fiber_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> failwith "fiber boom");
  (match Engine.run e with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "fiber boom" msg)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_stats_pp_smoke () =
  let s = Stats.create () in
  Stats.record_message s ~eager:true ~wire_bytes:42;
  let rendered = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "mentions wire bytes" true (contains rendered "42");
  Alcotest.(check bool) "includes derived line" true
    (contains rendered "mem_amplification")

(* Mutex *)

let test_mutex_excludes () =
  let e = Engine.create () in
  let m = Engine.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 and order = ref [] in
  for i = 1 to 4 do
    Engine.spawn e (fun () ->
        Engine.Mutex.with_lock e m (fun () ->
            incr inside;
            max_inside := max !max_inside !inside;
            order := i :: !order;
            Engine.sleep e 10.;
            decr inside))
  done;
  Engine.run e;
  check_int "never two inside" 1 !max_inside;
  (* FIFO handoff preserves spawn order *)
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !order)

let test_mutex_unlock_errors () =
  let m = Engine.Mutex.create () in
  Alcotest.check_raises "unlock unlocked"
    (Invalid_argument "Mutex.unlock: not locked") (fun () ->
      Engine.Mutex.unlock m)

let test_mutex_with_lock_releases_on_exn () =
  let e = Engine.create () in
  let m = Engine.Mutex.create () in
  let second_ran = ref false in
  Engine.spawn e (fun () ->
      (try Engine.Mutex.with_lock e m (fun () -> failwith "boom")
       with Failure _ -> ()));
  Engine.spawn e (fun () ->
      Engine.Mutex.with_lock e m (fun () -> second_ran := true));
  Engine.run e;
  Alcotest.(check bool) "released after exception" true !second_ran;
  Alcotest.(check bool) "free at end" false (Engine.Mutex.is_locked m)

(* Trace *)

let test_trace_basic () =
  let t = Trace.create ~capacity:4 () in
  Trace.record t ~time:1. ~category:"a" "one";
  Trace.record t ~time:2. ~category:"b" "two";
  check_int "length" 2 (Trace.length t);
  check_int "dropped" 0 (Trace.dropped t);
  (match Trace.events t with
  | [ e1; e2 ] ->
      check_float "t1" 1. e1.time;
      Alcotest.(check string) "cat" "b" e2.category
  | _ -> Alcotest.fail "expected two events");
  check_int "find" 1 (List.length (Trace.find t ~category:"a"))

let test_trace_ring_drops () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~category:"x" (string_of_int i)
  done;
  check_int "length bounded" 3 (Trace.length t);
  check_int "dropped" 7 (Trace.dropped t);
  (match Trace.events t with
  | [ a; b; c ] ->
      Alcotest.(check (list string)) "last three" [ "8"; "9"; "10" ]
        [ a.message; b.message; c.message ]
  | _ -> Alcotest.fail "three events");
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

let test_trace_dropped_by_category () =
  let t = Trace.create ~capacity:2 () in
  Trace.record t ~time:1. ~category:"send" "1";
  Trace.record t ~time:2. ~category:"send" "2";
  Trace.record t ~time:3. ~category:"match" "3";
  Trace.record t ~time:4. ~category:"match" "4";
  (* the two "send" events were overwritten *)
  Alcotest.(check (list (pair string int)))
    "per-category drops" [ ("send", 2) ] (Trace.dropped_by_category t);
  let rendered = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "pp names the lost category" true
    (contains rendered "send=2");
  Trace.clear t;
  Alcotest.(check (list (pair string int)))
    "clear resets drops" [] (Trace.dropped_by_category t)

(* Config / Stats *)

let test_config_costs () =
  let c = Config.default in
  check_float "wire time scales" (c.link.ns_per_byte *. 2000.)
    (Config.wire_time c.link 2000);
  Alcotest.(check bool) "alloc has base cost" true
    (Config.alloc_time c.cpu 0 >= c.cpu.alloc_base_ns);
  Alcotest.(check bool) "memcpy monotone" true
    (Config.memcpy_time c.cpu 100 < Config.memcpy_time c.cpu 1000)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.record_message s ~eager:true ~wire_bytes:100;
  Stats.record_message s ~eager:false ~wire_bytes:200;
  Stats.record_copy s 50;
  Stats.record_alloc s 1000;
  Stats.record_alloc s 500;
  Stats.record_free s 1000;
  check_int "messages" 2 s.messages_sent;
  check_int "wire" 300 s.bytes_on_wire;
  check_int "eager" 1 s.eager_messages;
  check_int "rndv" 1 s.rndv_messages;
  check_int "copied" 50 s.bytes_copied;
  check_int "peak" 1500 s.peak_alloc_bytes;
  check_int "live" 500 s.live_alloc_bytes

let test_stats_diff () =
  let s = Stats.create () in
  Stats.record_message s ~eager:true ~wire_bytes:10;
  let before = Stats.snapshot s in
  Stats.record_message s ~eager:true ~wire_bytes:32;
  Stats.record_pack_cb s;
  let d = Stats.diff ~after:s ~before in
  check_int "delta messages" 1 d.messages_sent;
  check_int "delta wire" 32 d.bytes_on_wire;
  check_int "delta pack" 1 d.pack_callbacks

(* diff measures an interval, but live/peak are levels, not deltas: the
   result must carry the [after] values unchanged. *)
let test_stats_diff_live_peak_carry_over () =
  let s = Stats.create () in
  Stats.record_alloc s 1000;
  Stats.record_free s 400;
  let before = Stats.snapshot s in
  Stats.record_alloc s 200;
  let d = Stats.diff ~after:s ~before in
  check_int "delta allocs" 1 d.allocs;
  check_int "delta allocated" 200 d.bytes_allocated;
  check_int "live carries after" 800 d.live_alloc_bytes;
  check_int "peak carries after" 1000 d.peak_alloc_bytes;
  check_int "after live unchanged" 800 s.live_alloc_bytes;
  check_int "after peak unchanged" 1000 s.peak_alloc_bytes

let test_stats_derived () =
  let s = Stats.create () in
  check_float "amplification on empty" 0. (Stats.memory_amplification s);
  check_float "mean iov on empty" 0. (Stats.mean_iov_entries s);
  Stats.record_message s ~eager:true ~wire_bytes:1000;
  Stats.record_message s ~eager:false ~wire_bytes:1000;
  Stats.record_copy s 3000;
  Stats.record_iov_entries s 7;
  check_float "amplification" 1.5 (Stats.memory_amplification s);
  check_float "mean iov" 3.5 (Stats.mean_iov_entries s)

let test_stats_reset () =
  let s = Stats.create () in
  Stats.record_alloc s 10;
  Stats.record_probe s;
  Stats.reset s;
  check_int "allocs" 0 s.allocs;
  check_int "probes" 0 s.probes;
  check_int "peak" 0 s.peak_alloc_bytes

(* Properties *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap: pops are sorted" ~count:100
    QCheck.(list (pair (float_bound_inclusive 1000.) small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i ()) entries;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (t, _, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng: int always in range" ~count:200
    QCheck.(pair small_nat (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* Evq: the engine's calendar-queue event queue *)

let test_evq_ordering () =
  let q = Evq.create () in
  Evq.push q ~time:3. ~seq:0 "c";
  Evq.push q ~time:1. ~seq:1 "a";
  Evq.push q ~time:2. ~seq:2 "b";
  Alcotest.(check (float 0.)) "min_time" 1. (Evq.min_time q);
  Alcotest.(check string) "first" "a" (Evq.pop_min q);
  Alcotest.(check string) "second" "b" (Evq.pop_min q);
  Alcotest.(check string) "third" "c" (Evq.pop_min q);
  Alcotest.(check bool) "empty" true (Evq.is_empty q)

let test_evq_fifo_ties () =
  let q = Evq.create () in
  for i = 0 to 9 do
    Evq.push q ~time:5. ~seq:i i
  done;
  for i = 0 to 9 do
    match Evq.pop q with
    | Some (_, _, v) -> check_int "fifo order at equal time" i v
    | None -> Alcotest.fail "empty"
  done

let test_evq_counters () =
  let q = Evq.create () in
  (* 300 pushes cross the initial 256-entry capacity once: every push
     except the one that grew the arrays counts as a pool reuse *)
  for i = 1 to 300 do
    Evq.push q ~time:(float_of_int i) ~seq:i i
  done;
  check_int "pushes" 300 (Evq.pushes q);
  check_int "max_live" 300 (Evq.max_live q);
  check_int "reuses" 299 (Evq.reuses q);
  for _ = 1 to 300 do
    ignore (Evq.pop_min q)
  done;
  for i = 1 to 5 do
    Evq.push q ~time:(float_of_int i) ~seq:(300 + i) i
  done;
  check_int "steady-state pushes all reuse" 304 (Evq.reuses q);
  check_int "max_live unchanged by drain" 300 (Evq.max_live q)

(* The tentpole correctness pin: over an arbitrary interleaving of
   pushes and pops — with heavy timestamp ties and far-future outliers
   that exercise the calendar's clamp path — Evq must produce exactly
   the (time, seq, value) pop sequence of the reference binary heap. *)
let prop_evq_matches_heap =
  let time_gen =
    QCheck.Gen.(
      oneof
        [
          map float_of_int (int_bound 20);
          float_bound_inclusive 1000.;
          oneofl [ 1e13; 0.; 0.125 ];
        ])
  in
  let ops_gen = QCheck.Gen.(list (pair bool time_gen)) in
  let print_ops ops =
    String.concat "; "
      (List.map
         (fun (push, t) -> if push then Printf.sprintf "push %g" t else "pop")
         ops)
  in
  QCheck.Test.make ~name:"evq: pop order identical to reference heap"
    ~count:300
    (QCheck.make ~print:print_ops ops_gen)
    (fun ops ->
      let h = Heap.create () in
      let q = Evq.create () in
      let seq = ref 0 in
      let ok = ref true in
      let pop_both () =
        let want = Heap.pop h in
        let got = Evq.pop q in
        if got <> want then ok := false
      in
      List.iter
        (fun (push, time) ->
          if push then begin
            incr seq;
            Heap.push h ~time ~seq:!seq !seq;
            Evq.push q ~time ~seq:!seq !seq
          end
          else pop_both ())
        ops;
      while not (Heap.is_empty h && Evq.is_empty q) do
        pop_both ()
      done;
      !ok)

(* Engine virtual-time hardening *)

let test_sleep_rejects_bad_durations () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Alcotest.check_raises "NaN sleep"
        (Invalid_argument "Engine.sleep: NaN duration") (fun () ->
          Engine.sleep e Float.nan);
      Alcotest.check_raises "negative sleep"
        (Invalid_argument "Engine.sleep: negative duration") (fun () ->
          Engine.sleep e (-1.)));
  Engine.run e

let test_schedule_rejects_poison_delays () =
  let e = Engine.create () in
  Alcotest.check_raises "NaN delay"
    (Invalid_argument "Engine.schedule: NaN delay") (fun () ->
      Engine.at e ~delay:Float.nan (fun () -> ()));
  Alcotest.check_raises "-infinity delay"
    (Invalid_argument "Engine.schedule: -infinity delay") (fun () ->
      Engine.at e ~delay:Float.neg_infinity (fun () -> ()))

let test_schedule_clamps_negative_delay () =
  let e = Engine.create () in
  let seen = ref Float.nan in
  Engine.at e ~delay:(-5.) (fun () -> seen := Engine.now e);
  Engine.run e;
  check_float "negative delay runs at now" 0. !seen

let test_engine_event_stats () =
  let e = Engine.create () in
  let s = Stats.create () in
  Engine.set_stats e s;
  Engine.spawn e (fun () ->
      Engine.sleep e 1.;
      Engine.sleep e 2.);
  Engine.spawn e (fun () -> Engine.sleep e 1.5);
  Engine.run e;
  Alcotest.(check bool)
    "events counted" true
    (s.Stats.events_scheduled_total >= 3);
  Alcotest.(check bool) "peak live tracked" true (s.Stats.max_live_events >= 1);
  Alcotest.(check bool)
    "pooled <= scheduled" true
    (s.Stats.events_pooled_reuses <= s.Stats.events_scheduled_total)

(* Topology *)

let test_topology_switch_paths () =
  let t = Topology.switch ~nranks:8 in
  check_int "self-send crosses no links" 0 (Topology.path_hops t ~src:3 ~dst:3);
  check_int "cross-switch is two links" 2 (Topology.path_hops t ~src:0 ~dst:5);
  check_float "flat latency" 100.
    (Topology.path_latency t ~latency_ns:100. ~src:0 ~dst:5)

let test_topology_fattree_latency () =
  let t = Topology.fat_tree ~nranks:64 () in
  (* default shape: 16 ranks per leaf *)
  check_float "intra-leaf latency matches flat" 100.
    (Topology.path_latency t ~latency_ns:100. ~src:0 ~dst:1);
  check_float "spine crossing pays 2x" 200.
    (Topology.path_latency t ~latency_ns:100. ~src:0 ~dst:16)

let test_topology_dragonfly_latency () =
  let t = Topology.dragonfly ~nranks:64 () in
  (* default shape: 32 ranks per group *)
  check_float "intra-group latency matches flat" 100.
    (Topology.path_latency t ~latency_ns:100. ~src:0 ~dst:1);
  check_float "global hop pays 3x" 300.
    (Topology.path_latency t ~latency_ns:100. ~src:0 ~dst:32)

let test_topology_congestion () =
  let t = Topology.switch ~nranks:8 in
  let ser = Topology.serialize t ~ns_per_byte:1. ~src:0 ~dst:1 ~bytes:1000 ~now:0. in
  check_float "uncontended transfer pays wire time" 1000. ser;
  (* same source link, same instant: the second transfer queues *)
  let blocked =
    Topology.serialize t ~ns_per_byte:1. ~src:0 ~dst:2 ~bytes:1000 ~now:0.
  in
  check_float "contended transfer queues behind the first" 2000. blocked;
  check_int "congestion event counted" 1 (Topology.congestion_events t);
  check_float "queueing wait accumulated" 1000. (Topology.congestion_wait_ns t);
  (* disjoint endpoints: no shared link, no wait *)
  let free =
    Topology.serialize t ~ns_per_byte:1. ~src:4 ~dst:5 ~bytes:1000 ~now:0.
  in
  check_float "disjoint path proceeds in parallel" 1000. free;
  check_int "no extra congestion" 1 (Topology.congestion_events t);
  Topology.reset_counters t;
  check_int "counters reset" 0 (Topology.congestion_events t)

let test_topology_deterministic () =
  let run () =
    let t = Topology.fat_tree ~nranks:64 () in
    let acc = ref 0. in
    for src = 0 to 63 do
      for dst = 0 to 63 do
        acc :=
          !acc
          +. Topology.serialize t ~ns_per_byte:0.5 ~src ~dst ~bytes:256
               ~now:(float_of_int (src + dst))
      done
    done;
    (!acc, Topology.congestion_events t, Topology.congestion_wait_ns t)
  in
  let a1, e1, w1 = run () in
  let a2, e2, w2 = run () in
  check_float "total cost replays bit-identical" a1 a2;
  check_int "congestion events replay" e1 e2;
  check_float "congestion wait replays" w1 w2

let test_topology_of_string () =
  check_int "switch parses" 8
    (Topology.nranks (Topology.of_string "switch" ~nranks:8));
  Alcotest.(check string)
    "fattree parses" "fattree"
    (Topology.kind_name (Topology.of_string "fattree" ~nranks:8));
  Alcotest.(check string)
    "dragonfly parses" "dragonfly"
    (Topology.kind_name (Topology.of_string "dragonfly" ~nranks:8));
  Alcotest.(check bool) "unknown name rejected" true
    (try
       ignore (Topology.of_string "torus" ~nranks:8);
       false
     with Invalid_argument _ -> true)

let test_topology_validation () =
  Alcotest.(check bool) "non-positive nranks rejected" true
    (try
       ignore (Topology.switch ~nranks:0);
       false
     with Invalid_argument _ -> true);
  let t = Topology.switch ~nranks:4 in
  Alcotest.(check bool) "out-of-range rank rejected" true
    (try
       ignore (Topology.serialize t ~ns_per_byte:1. ~src:0 ~dst:7 ~bytes:1 ~now:0.);
       false
     with Invalid_argument _ -> true)

let suite =
  let tc = Alcotest.test_case in
  ( "simnet",
    [
      tc "heap ordering" `Quick test_heap_ordering;
      tc "heap FIFO on ties" `Quick test_heap_fifo_ties;
      tc "heap many elements" `Quick test_heap_many;
      tc "sleep advances clock" `Quick test_sleep_advances_clock;
      tc "fibers interleave by time" `Quick test_two_fibers_interleave;
      tc "ivar blocks until filled" `Quick test_ivar_blocks;
      tc "ivar double fill" `Quick test_ivar_double_fill;
      tc "mailbox fifo" `Quick test_mailbox_fifo;
      tc "mailbox buffering" `Quick test_mailbox_buffering;
      tc "deadlock detection" `Quick test_deadlock_detection;
      tc "at callback" `Quick test_at_callback;
      tc "spawn from fiber" `Quick test_spawn_from_fiber;
      tc "waitq broadcast" `Quick test_waitq_broadcast;
      tc "engine determinism" `Quick test_determinism;
      tc "rng deterministic" `Quick test_rng_deterministic;
      tc "rng int bounds" `Quick test_rng_bounds;
      tc "rng float bounds" `Quick test_rng_float_bounds;
      tc "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
      tc "rng split independent" `Quick test_rng_split_independent;
      tc "fiber exception propagates" `Quick test_fiber_exception_propagates;
      tc "stats pp smoke" `Quick test_stats_pp_smoke;
      tc "mutex excludes + fifo" `Quick test_mutex_excludes;
      tc "mutex unlock errors" `Quick test_mutex_unlock_errors;
      tc "mutex releases on exception" `Quick test_mutex_with_lock_releases_on_exn;
      tc "trace basic" `Quick test_trace_basic;
      tc "trace ring drops" `Quick test_trace_ring_drops;
      tc "trace drops by category" `Quick test_trace_dropped_by_category;
      tc "config cost helpers" `Quick test_config_costs;
      tc "stats counters" `Quick test_stats_counters;
      tc "stats diff" `Quick test_stats_diff;
      tc "stats diff carries live/peak" `Quick
        test_stats_diff_live_peak_carry_over;
      tc "stats derived metrics" `Quick test_stats_derived;
      tc "stats reset" `Quick test_stats_reset;
      tc "evq ordering" `Quick test_evq_ordering;
      tc "evq FIFO on ties" `Quick test_evq_fifo_ties;
      tc "evq pool counters" `Quick test_evq_counters;
      tc "sleep rejects NaN/negative" `Quick test_sleep_rejects_bad_durations;
      tc "schedule rejects poison delays" `Quick
        test_schedule_rejects_poison_delays;
      tc "schedule clamps negative delay" `Quick
        test_schedule_clamps_negative_delay;
      tc "engine event stats" `Quick test_engine_event_stats;
      tc "topology switch paths" `Quick test_topology_switch_paths;
      tc "topology fat-tree latency" `Quick test_topology_fattree_latency;
      tc "topology dragonfly latency" `Quick test_topology_dragonfly_latency;
      tc "topology congestion" `Quick test_topology_congestion;
      tc "topology deterministic" `Quick test_topology_deterministic;
      tc "topology of_string" `Quick test_topology_of_string;
      tc "topology validation" `Quick test_topology_validation;
      QCheck_alcotest.to_alcotest prop_heap_sorted;
      QCheck_alcotest.to_alcotest prop_rng_int_in_range;
      QCheck_alcotest.to_alcotest prop_evq_matches_heap;
    ] )
