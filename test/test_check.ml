(* Tests for the Mpicd_check_lib analyzers: seeded-bad datatypes,
   callback sets and communication patterns must each produce their
   expected finding, and everything the repo ships must come back
   clean. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Check = Mpicd_check_lib
module Finding = Check.Finding

let ids fs = List.map (fun (f : Finding.t) -> f.Finding.id) fs

let has id fs =
  if not (List.mem id (ids fs)) then
    Alcotest.failf "expected finding %s, got [%s]" id
      (String.concat "; " (ids fs))

let problems fs = List.filter Finding.is_problem fs

let check_clean what fs =
  Alcotest.(check (list string))
    (what ^ " has no problems")
    []
    (ids (problems fs))

(* --- datatype lint --- *)

let lint = Check.Dt_lint.lint ~subject:"fixture"

let test_lint_overlap () =
  let t =
    Dt.hindexed ~blocklengths:[| 8; 8 |] ~displacements_bytes:[| 0; 4 |] Dt.byte
  in
  has "DT-OVERLAP" (lint t)

let test_lint_overlap_count2 () =
  (* one element is fine; consecutive elements interleave destructively *)
  let t =
    Dt.resized ~lb:0 ~extent:4 (Dt.contiguous 8 Dt.byte)
  in
  let fs = lint t in
  has "DT-OVERLAP" fs;
  has "DT-EXTENT-SHRUNK" fs

let test_lint_misaligned () =
  let t =
    Dt.struct_ ~blocklengths:[| 1; 1 |] ~displacements_bytes:[| 0; 2 |]
      ~types:[| Dt.int8; Dt.int32 |]
  in
  has "DT-MISALIGNED" (lint t)

let test_lint_zero_block () =
  let t =
    Dt.hindexed ~blocklengths:[| 4; 0; 4 |]
      ~displacements_bytes:[| 0; 4; 8 |]
      Dt.byte
  in
  has "DT-ZERO-BLOCK" (lint t)

let test_lint_norm_vector () =
  (* evenly spaced uniform indexed blocks: provably a vector *)
  let t =
    Dt.hindexed ~blocklengths:[| 2; 2; 2; 2 |]
      ~displacements_bytes:[| 0; 48; 96; 144 |]
      Dt.float64
  in
  let fs = lint t in
  has "DT-NORM-VECTOR" fs;
  check_clean "provable vector (hint only)" fs

let test_lint_norm_contig () =
  let t = Dt.hvector ~count:4 ~blocklength:2 ~stride_bytes:16 Dt.float64 in
  has "DT-NORM-CONTIG" (lint t)

let test_lint_clean_type () =
  (* a plain strided column: gaps, aligned, no rewrite possible *)
  let t = Dt.vector ~count:8 ~blocklength:1 ~stride:10 Dt.float64 in
  Alcotest.(check (list string)) "no findings at all" [] (ids (lint t))

let test_lint_registry_clean () =
  check_clean "registry datatypes" (Check.Registry_check.lint_kernels ())

(* --- performance guideline checker --- *)

let guideline = Check.Guideline.check ~subject:"fixture"

let find id fs =
  match List.find_opt (fun (f : Finding.t) -> f.Finding.id = id) fs with
  | Some f -> f
  | None ->
      Alcotest.failf "expected finding %s, got [%s]" id
        (String.concat "; " (ids fs))

let test_guideline_slower () =
  (* 64 byte-adjacent hindexed blocks: the committed descriptor carries
     128 index entries the coalesced form doesn't, well past the
     500 ns violation threshold *)
  let t =
    Dt.hindexed
      ~blocklengths:(Array.make 64 1)
      ~displacements_bytes:(Array.init 64 (fun i -> i * 8))
      Dt.float64
  in
  let f = find "GL-NORM-SLOWER" (guideline t) in
  Alcotest.(check bool) "is an Error" true (f.Finding.severity = Finding.Error);
  (match f.Finding.cost_delta_ns with
  | Some d ->
      Alcotest.(check bool) "saving at or above threshold" true
        (d >= Check.Guideline.default_threshold_ns)
  | None -> Alcotest.fail "violation must carry cost_delta_ns");
  match f.Finding.rewrite with
  | Some r ->
      Alcotest.(check bool) "replacement is the coalesced contiguous" true
        (Dt.equal r.Finding.rw_replacement (Dt.contiguous 64 Dt.float64));
      Alcotest.(check bool) "replacement is equivalent" true
        (Check.Guideline.check ~subject:"x" r.Finding.rw_replacement = [])
  | None -> Alcotest.fail "violation must carry a typed rewrite"

let test_guideline_available_hint () =
  (* a collapsible hvector saves only 50 ns: below threshold, Hint *)
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let fs = guideline t in
  let f = find "GL-NORM-AVAILABLE" fs in
  Alcotest.(check bool) "is a Hint" true (f.Finding.severity = Finding.Hint);
  (match f.Finding.cost_delta_ns with
  | Some d ->
      Alcotest.(check bool) "saving below threshold" true
        (d < Check.Guideline.default_threshold_ns && d > 0.)
  | None -> Alcotest.fail "hint must carry cost_delta_ns");
  check_clean "below-threshold normalization" fs

let test_guideline_threshold_tunable () =
  (* the same hvector becomes a violation once the threshold drops
     under its 50 ns saving *)
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let fs = Check.Guideline.check ~threshold_ns:10. ~subject:"fixture" t in
  let f = find "GL-NORM-SLOWER" fs in
  Alcotest.(check bool) "error at low threshold" true
    (f.Finding.severity = Finding.Error)

let test_guideline_clean_type () =
  (* genuinely gapped strided column: already normal, no findings *)
  let t = Dt.vector ~count:8 ~blocklength:1 ~stride:10 Dt.float64 in
  Alcotest.(check (list string)) "no findings at all" [] (ids (guideline t))

let test_guideline_registry_clean () =
  check_clean "ddtbench guideline sweep"
    (Check.Registry_check.guideline_kernels ())

let test_guideline_hints_never_fail () =
  (* regression: a report made only of guideline hints must keep the
     checker's exit status at success *)
  let hints =
    guideline (Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64)
    @ guideline
        (Dt.struct_ ~blocklengths:[| 1; 1 |] ~displacements_bytes:[| 0; 16 |]
           ~types:[| Dt.float64; Dt.float64 |])
  in
  Alcotest.(check bool) "fixtures did produce hints" true (hints <> []);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool)
        (f.Finding.id ^ " is not a problem")
        false (Finding.is_problem f))
    hints;
  Alcotest.(check int) "problem_count stays 0" 0
    (Check.Report.problem_count [ Check.Report.section "hints only" hints ])

(* --- callback contract checker --- *)

(* Baseline well-behaved callback set: the object is an [n]-byte buffer
   packed by straight blits. *)
let good_callbacks n =
  {
    Custom.state = (fun _ ~count:_ -> ());
    state_free = ignore;
    query = (fun () _ ~count:_ -> n);
    pack =
      (fun () obj ~count:_ ~offset ~dst ->
        let len = min (Buf.length dst) (n - offset) in
        Buf.blit ~src:obj ~src_pos:offset ~dst ~dst_pos:0 ~len;
        len);
    unpack =
      (fun () obj ~count:_ ~offset ~src ->
        Buf.blit ~src ~src_pos:0 ~dst:obj ~dst_pos:offset ~len:(Buf.length src));
    region_count = None;
    regions = None;
  }

let filled n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i (i land 0xff)
  done;
  b

let spec ?expected_wire n cb : Buf.t Check.Contract.spec =
  {
    Check.Contract.name = "fixture";
    dt = Custom.create cb;
    make = (fun () -> filled n);
    make_sink = (fun () -> Buf.create n) |> Option.some;
    equal = Some Buf.equal;
    count = 1;
    expected_wire = (match expected_wire with Some w -> Some w | None -> Some n);
  }

let contract s = Check.Contract.check ~seed:42 s

let test_contract_good () =
  Alcotest.(check (list string))
    "well-behaved set is clean" []
    (ids (contract (spec 32 (good_callbacks 32))))

let test_contract_short_pack () =
  let cb = { (good_callbacks 32) with Custom.pack = (fun () _ ~count:_ ~offset:_ ~dst:_ -> 0) } in
  has "CB-SHORT-PACK" (contract (spec 32 cb))

let test_contract_overrun () =
  let cb =
    {
      (good_callbacks 32) with
      Custom.pack = (fun () _ ~count:_ ~offset:_ ~dst -> Buf.length dst + 1);
    }
  in
  has "CB-OVERRUN" (contract (spec 32 cb))

let test_contract_raises () =
  let cb =
    {
      (good_callbacks 32) with
      Custom.pack = (fun () _ ~count:_ ~offset:_ ~dst:_ -> raise (Custom.Error 3));
    }
  in
  has "CB-CALLBACK-RAISED" (contract (spec 32 cb))

let test_contract_query_unstable () =
  let q = ref 31 in
  let cb =
    {
      (good_callbacks 32) with
      Custom.query =
        (fun () _ ~count:_ ->
          incr q;
          !q);
    }
  in
  has "CB-QUERY-UNSTABLE" (contract (spec 32 cb))

let test_contract_region_overlap () =
  let cb =
    {
      (good_callbacks 32) with
      Custom.query = (fun () _ ~count:_ -> 0);
      pack = (fun () _ ~count:_ ~offset:_ ~dst:_ -> 0);
      region_count = Some (fun () _ ~count:_ -> 2);
      regions =
        Some
          (fun () obj ~count:_ ->
            [| Buf.sub obj ~pos:0 ~len:16; Buf.sub obj ~pos:8 ~len:16 |]);
    }
  in
  has "CB-REGION-OVERLAP" (contract (spec 32 cb))

let test_contract_wire_mismatch () =
  has "CB-WIRE-MISMATCH"
    (contract (spec ~expected_wire:33 32 (good_callbacks 32)))

let test_contract_frag_inconsistent () =
  (* stamps the first byte of every fragment: the packed stream depends
     on where fragment boundaries fall.  128-byte stream with <= 64-byte
     fuzz fragments guarantees at least one interior boundary. *)
  let base = good_callbacks 128 in
  let cb =
    {
      base with
      Custom.pack =
        (fun () obj ~count ~offset ~dst ->
          let len = base.Custom.pack () obj ~count ~offset ~dst in
          if len > 0 then Buf.set_u8 dst 0 0xee;
          len);
    }
  in
  has "CB-FRAG-INCONSISTENT" (contract (spec 128 cb))

let test_contract_bad_roundtrip () =
  let cb =
    {
      (good_callbacks 32) with
      Custom.unpack =
        (fun () obj ~count:_ ~offset:_ ~src ->
          (* ignores the stream offset: fragments all land at byte 0 *)
          Buf.blit ~src ~src_pos:0 ~dst:obj ~dst_pos:0 ~len:(Buf.length src));
    }
  in
  has "CB-ROUNDTRIP" (contract (spec 32 cb))

let test_contract_registry_clean () =
  Alcotest.(check (list string))
    "shipped kernel callback sets are clean" []
    (ids (Check.Registry_check.contract_kernels ()))

(* --- communication matching & deadlock analysis --- *)

let run_scenario ~size f = Check.Matchcheck.run ~subject:"fixture" ~size f

let test_match_deadlock () =
  let r =
    run_scenario ~size:2 (fun comm ->
        let peer = 1 - Mpi.rank comm in
        (* both ranks block in recv before anyone sends *)
        ignore (Mpi.recv comm ~source:peer ~tag:0 (Mpi.Bytes (Buf.create 8)));
        Mpi.send comm ~dst:peer ~tag:0 (Mpi.Bytes (Buf.create 8)))
  in
  Alcotest.(check bool) "deadlocked" true r.Check.Matchcheck.deadlocked;
  has "MATCH-DEADLOCK" r.Check.Matchcheck.findings

let test_match_type_mismatch () =
  let r =
    run_scenario ~size:2 (fun comm ->
        if Mpi.rank comm = 0 then
          Mpi.send comm ~dst:1 ~tag:0
            (Mpi.Typed { dt = Dt.int32; count = 4; base = Buf.create 16 })
        else
          ignore
            (Mpi.recv comm ~source:0 ~tag:0
               (Mpi.Typed { dt = Dt.float64; count = 2; base = Buf.create 16 })))
  in
  has "MATCH-TYPE-MISMATCH" r.Check.Matchcheck.findings

let test_match_truncation () =
  let r =
    run_scenario ~size:2 (fun comm ->
        if Mpi.rank comm = 0 then
          Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (filled 32))
        else
          (* too small; never waited on, so the error only surfaces in
             the monitor's transport-level outcome *)
          ignore (Mpi.irecv comm ~source:0 ~tag:0 (Mpi.Bytes (Buf.create 16))))
  in
  has "MATCH-TRUNCATION" r.Check.Matchcheck.findings

let test_match_unmatched () =
  let r =
    run_scenario ~size:2 (fun comm ->
        if Mpi.rank comm = 0 then
          (* rendezvous-sized send nobody receives: stays pending *)
          ignore
            (Mpi.isend comm ~dst:1 ~tag:9 (Mpi.Bytes (Buf.create (512 * 1024))))
        else ignore (Mpi.irecv comm ~source:0 ~tag:5 (Mpi.Bytes (Buf.create 8))))
  in
  has "MATCH-UNMATCHED-SEND" r.Check.Matchcheck.findings;
  has "MATCH-UNMATCHED-RECV" r.Check.Matchcheck.findings

let test_match_clean_ring () =
  let r =
    run_scenario ~size:4 (fun comm ->
        let me = Mpi.rank comm and n = Mpi.size comm in
        let dt = Dt.contiguous 16 Dt.float64 in
        let rs =
          Mpi.isend comm ~dst:((me + 1) mod n) ~tag:7
            (Mpi.Typed { dt; count = 1; base = Buf.create 128 })
        in
        let rr =
          Mpi.irecv comm
            ~source:((me + n - 1) mod n)
            ~tag:7
            (Mpi.Typed { dt; count = 1; base = Buf.create 128 })
        in
        ignore (Mpi.waitall [ rs; rr ]))
  in
  Alcotest.(check bool) "not deadlocked" false r.Check.Matchcheck.deadlocked;
  Alcotest.(check (list string))
    "ring is clean" []
    (ids r.Check.Matchcheck.findings)

(* --- report rendering --- *)

let test_report_counts () =
  let fs =
    [
      Finding.make ~id:"X-ERR" ~severity:Finding.Error ~analyzer:"a" ~subject:"s"
        "an error";
      Finding.make ~id:"X-HINT" ~severity:Finding.Hint ~analyzer:"a" ~subject:"s"
        "a hint";
    ]
  in
  let sections = [ Check.Report.section "t" fs ] in
  Alcotest.(check int) "problems" 1 (Check.Report.problem_count sections);
  let json = Check.Report.render_json sections in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json mentions rule id" true
    (contains json {|"id":"X-ERR"|})

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Golden rendering of one fully-populated finding: the exact JSON
   object, byte for byte, so any schema change is a deliberate edit
   here.  The [rewrite] key is the one post-seed addition and must stay
   appended last. *)
let test_json_golden_finding () =
  let f =
    Finding.make ~suggestion:"commit contig(12,f64) instead"
      ~cost_delta_ns:50.
      ~rewrite:
        {
          Finding.rw_rule = "hvector-collapse";
          rw_path = "";
          rw_replacement = Dt.contiguous 12 Dt.float64;
          rw_steps = 1;
        }
      ~id:"GL-NORM-AVAILABLE" ~severity:Finding.Hint ~analyzer:"guideline"
      ~subject:"fixture" "a provably-equivalent normalization exists"
  in
  Alcotest.(check string)
    "golden JSON"
    ({|{"id":"GL-NORM-AVAILABLE","severity":"hint","analyzer":"guideline",|}
    ^ {|"subject":"fixture","message":"a provably-equivalent normalization exists",|}
    ^ {|"suggestion":"commit contig(12,f64) instead","cost_delta_ns":50.000,|}
    ^ {|"rewrite":{"rule":"hvector-collapse","path":"","replacement":"contig(12,f64)","steps":1}}|}
    )
    (Finding.json f);
  (* a finding without the optional keys must not mention them *)
  let bare =
    Finding.json
      (Finding.make ~id:"X" ~severity:Finding.Error ~analyzer:"a" ~subject:"s"
         "m")
  in
  Alcotest.(check bool) "no rewrite key when absent" false
    (contains bare {|"rewrite"|});
  Alcotest.(check bool) "no cost key when absent" false
    (contains bare {|"cost_delta_ns"|})

(* Schema coverage: one report carrying real findings from every
   analyzer (lint, guideline, contract, matching/deadlock) renders with
   every required key present. *)
let test_json_schema_all_analyzers () =
  let lint_fs = lint (Dt.hvector ~count:4 ~blocklength:2 ~stride_bytes:16 Dt.float64) in
  let gl_fs =
    guideline
      (Dt.hindexed
         ~blocklengths:(Array.make 64 1)
         ~displacements_bytes:(Array.init 64 (fun i -> i * 8))
         Dt.float64)
  in
  let contract_fs =
    contract
      (spec 32
         {
           (good_callbacks 32) with
           Custom.pack = (fun () _ ~count:_ ~offset:_ ~dst:_ -> 0);
         })
  in
  let match_r =
    run_scenario ~size:2 (fun comm ->
        let peer = 1 - Mpi.rank comm in
        ignore (Mpi.recv comm ~source:peer ~tag:0 (Mpi.Bytes (Buf.create 8)));
        Mpi.send comm ~dst:peer ~tag:0 (Mpi.Bytes (Buf.create 8)))
  in
  let json =
    Check.Report.render_json
      [
        Check.Report.section "lint" lint_fs;
        Check.Report.section "guidelines" gl_fs;
        Check.Report.section "contract" contract_fs;
        Check.Report.section
          ~notes:[ ("deadlocked", "true") ]
          "match" match_r.Check.Matchcheck.findings;
      ]
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("json has " ^ key) true (contains json key))
    [
      (* report envelope *)
      {|"sections"|};
      {|"title"|};
      {|"notes"|};
      {|"findings"|};
      {|"problems"|};
      (* per-finding schema *)
      {|"id"|};
      {|"severity"|};
      {|"analyzer"|};
      {|"subject"|};
      {|"message"|};
      {|"suggestion"|};
      {|"cost_delta_ns"|};
      (* one real finding from each analyzer *)
      {|"id":"DT-NORM-CONTIG"|};
      {|"id":"GL-NORM-SLOWER"|};
      {|"id":"CB-SHORT-PACK"|};
      {|"id":"MATCH-DEADLOCK"|};
      (* the typed rewrite payload: lint's single-rule form and the
         guideline checker's composed multi-step form *)
      {|"rewrite":{"rule":"hvector-collapse"|};
      {|"rewrite":{"rule":"normalize"|};
    ]

let suite =
  let tc = Alcotest.test_case in
  ( "check",
    [
      tc "lint: overlapping indexed blocks" `Quick test_lint_overlap;
      tc "lint: overlap at count>=2 + shrunk extent" `Quick
        test_lint_overlap_count2;
      tc "lint: misaligned struct member" `Quick test_lint_misaligned;
      tc "lint: zero-length block" `Quick test_lint_zero_block;
      tc "lint: indexed provably a vector" `Quick test_lint_norm_vector;
      tc "lint: vector provably contiguous" `Quick test_lint_norm_contig;
      tc "lint: honest strided type is silent" `Quick test_lint_clean_type;
      tc "lint: registry kernels have no problems" `Quick
        test_lint_registry_clean;
      tc "guideline: slow committed type is an Error" `Quick
        test_guideline_slower;
      tc "guideline: below-threshold saving is a Hint" `Quick
        test_guideline_available_hint;
      tc "guideline: threshold is tunable" `Quick
        test_guideline_threshold_tunable;
      tc "guideline: normal type is silent" `Quick test_guideline_clean_type;
      tc "guideline: registry sweep has no problems" `Slow
        test_guideline_registry_clean;
      tc "guideline: hints never flip the exit code" `Quick
        test_guideline_hints_never_fail;
      tc "contract: well-behaved callbacks clean" `Quick test_contract_good;
      tc "contract: zero-byte pack return" `Quick test_contract_short_pack;
      tc "contract: pack overruns fragment" `Quick test_contract_overrun;
      tc "contract: pack raises" `Quick test_contract_raises;
      tc "contract: unstable query" `Quick test_contract_query_unstable;
      tc "contract: overlapping regions" `Quick test_contract_region_overlap;
      tc "contract: wire-size mismatch" `Quick test_contract_wire_mismatch;
      tc "contract: fragmentation-dependent pack" `Quick
        test_contract_frag_inconsistent;
      tc "contract: broken unpack round-trip" `Quick test_contract_bad_roundtrip;
      tc "contract: registry kernels all pass" `Slow
        test_contract_registry_clean;
      tc "match: recv/recv deadlock cycle" `Quick test_match_deadlock;
      tc "match: type-signature mismatch" `Quick test_match_type_mismatch;
      tc "match: truncation" `Quick test_match_truncation;
      tc "match: unmatched at finalize" `Quick test_match_unmatched;
      tc "match: clean nonblocking ring" `Quick test_match_clean_ring;
      tc "report: counts and json" `Quick test_report_counts;
      tc "report: golden finding JSON" `Quick test_json_golden_finding;
      tc "report: schema covers every analyzer" `Quick
        test_json_schema_all_analyzers;
    ] )
