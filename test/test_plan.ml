(* Tests for the compiled pack-plan layer (Datatype.Plan): every entry
   point must be byte-identical to the interpreter engine, the cursor
   must survive out-of-order fragment offsets, and the memo cache must
   report hits/misses. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Stats = Mpicd_simnet.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pattern = Dt_gen.pattern
let arb_datatype = Dt_gen.arb

(* Typed-source length covering [count] elements of [t]. *)
let src_len t ~count = max 1 (Dt.ub t + ((count - 1) * Dt.extent t))

let sample_types =
  [
    ("contig", Dt.contiguous 16 Dt.int32);
    ("vector", Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32);
    ("hvector", Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:10 Dt.byte);
    ( "hindexed",
      Dt.hindexed ~blocklengths:[| 2; 1; 3 |]
        ~displacements_bytes:[| 0; 12; 20 |]
        Dt.int16 );
    ( "struct+resized",
      Dt.resized ~lb:0 ~extent:24
        (Dt.struct_ ~blocklengths:[| 3; 1 |] ~displacements_bytes:[| 0; 16 |]
           ~types:[| Dt.int32; Dt.float64 |]) );
    ("empty", Dt.contiguous 0 Dt.int32);
  ]

(* --- queries mirror the interpreter --- *)

let test_queries () =
  List.iter
    (fun (name, t) ->
      let p = Plan.build t in
      check_int (name ^ " size") (Dt.size t) (Plan.size p);
      check_int (name ^ " extent") (Dt.extent t) (Plan.extent p);
      check_int (name ^ " blocks") (Dt.blocks_per_element t) (Plan.block_count p);
      check_int (name ^ " packed_size")
        (Dt.packed_size t ~count:3)
        (Plan.packed_size p ~count:3);
      check_bool (name ^ " contiguous") (Dt.is_contiguous t)
        (Plan.is_contiguous p))
    sample_types

(* --- memo cache --- *)

let test_cache_hit_miss () =
  Plan.clear_cache ();
  let s = Stats.create () in
  let t = Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32 in
  let p1, o1 = Plan.get_outcome ~stats:s t in
  let p2, o2 = Plan.get_outcome ~stats:s t in
  check_bool "first is a miss" true (o1 = Plan.Miss);
  check_bool "second is a hit" true (o2 = Plan.Hit);
  check_bool "same compiled plan" true (p1 == p2);
  check_int "stats miss recorded" 1 s.Stats.plan_cache_misses;
  check_int "stats hit recorded" 1 s.Stats.plan_cache_hits;
  (* Physical-equality keying: a structurally equal but distinct value
     compiles its own plan. *)
  let t' = Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32 in
  let _, o3 = Plan.get_outcome ~stats:s t' in
  check_bool "distinct value misses" true (o3 = Plan.Miss);
  check_int "global hits" 1 (Plan.cache_hits ());
  check_int "global misses" 2 (Plan.cache_misses ())

(* --- stats parity with the interpreter engine --- *)

let test_stats_parity () =
  (* Trailing gap (extent > ub): the interpreter cannot merge blocks
     across element boundaries here, so its stream-wide walk and the
     plan's per-element execution count the same blocks/memcpys. *)
  let t =
    Dt.resized ~lb:0 ~extent:48
      (Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32)
  in
  let count = 2 in
  let src = pattern (src_len t ~count) in
  let run pack =
    let s = Stats.create () in
    let dst = Buf.create (Dt.packed_size t ~count) in
    pack s ~dst;
    (s.Stats.ddt_blocks_processed, s.Stats.memcpys, s.Stats.bytes_copied, dst)
  in
  let bi, mi, ci, di = run (fun s ~dst -> ignore (Dt.pack ~stats:s t ~count ~src ~dst)) in
  let p = Plan.build t in
  let bp, mp, cp, dp =
    run (fun s ~dst -> ignore (Plan.pack ~stats:s p ~count ~src ~dst))
  in
  check_int "same ddt blocks" bi bp;
  check_int "same memcpys" mi mp;
  check_int "same bytes copied" ci cp;
  check_bool "same bytes" true (Buf.equal di dp);
  (* A flush layout (last block ends at the extent) merges across
     elements in the interpreter but not in the plan; total bytes still
     agree. *)
  let t' = Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32 in
  let src' = pattern (src_len t' ~count) in
  let run' pack =
    let s = Stats.create () in
    let dst = Buf.create (Dt.packed_size t' ~count) in
    pack s ~dst;
    (s.Stats.bytes_copied, dst)
  in
  let ci', di' =
    run' (fun s ~dst -> ignore (Dt.pack ~stats:s t' ~count ~src:src' ~dst))
  in
  let p' = Plan.build t' in
  let cp', dp' =
    run' (fun s ~dst -> ignore (Plan.pack ~stats:s p' ~count ~src:src' ~dst))
  in
  check_int "flush layout: same bytes copied" ci' cp';
  check_bool "flush layout: same bytes" true (Buf.equal di' dp')

(* --- cursor bookkeeping --- *)

let test_cursor_resume_and_reseek () =
  let t = Dt.hvector ~count:8 ~blocklength:1 ~stride_bytes:3 Dt.byte in
  let count = 4 in
  let p = Plan.build t in
  let psize = Plan.packed_size p ~count in
  let src = pattern (src_len t ~count) in
  let cur = Plan.cursor p in
  let frag = 3 in
  let off = ref 0 in
  while !off < psize do
    let len = min frag (psize - !off) in
    let dst = Buf.create len in
    let n =
      Plan.pack_range ~cursor:cur p ~count ~src ~packed_off:!off ~dst
    in
    check_int "sequential fragment consumed" len n;
    off := !off + len
  done;
  check_int "sequential stream never reseeks" 0 (Plan.cursor_reseeks cur);
  check_bool "every fragment resumed" true (Plan.cursor_resumes cur > 0);
  (* An out-of-order offset forces one binary-search reseek... *)
  ignore
    (Plan.pack_range ~cursor:cur p ~count ~src ~packed_off:5
       ~dst:(Buf.create 4));
  check_int "out-of-order offset reseeks" 1 (Plan.cursor_reseeks cur);
  (* ...and the stream continues sequentially from there. *)
  let before = Plan.cursor_reseeks cur in
  ignore
    (Plan.pack_range ~cursor:cur p ~count ~src ~packed_off:9
       ~dst:(Buf.create 4));
  check_int "follow-up fragment resumes" before (Plan.cursor_reseeks cur)

(* --- properties: plan = interpreter --- *)

let prop_pack_unpack_iovec_equiv =
  QCheck.Test.make
    ~name:"plan: pack/unpack/iovec byte-identical to interpreter" ~count:200
    QCheck.(pair arb_datatype (int_range 1 4))
    (fun (t, count) ->
      let p = Plan.build t in
      let n = src_len t ~count in
      let src = pattern n in
      let psize = Dt.packed_size t ~count in
      let w_i = Buf.create psize and w_p = Buf.create psize in
      ignore (Dt.pack t ~count ~src ~dst:w_i);
      ignore (Plan.pack p ~count ~src ~dst:w_p);
      let u_i = Buf.create n and u_p = Buf.create n in
      Dt.unpack t ~count ~src:w_i ~dst:u_i;
      Plan.unpack p ~count ~src:w_p ~dst:u_p;
      let iov_i = Dt.iovec t ~count ~base:src in
      let iov_p = Plan.iovec p ~count ~base:src in
      Buf.equal w_i w_p && Buf.equal u_i u_p
      && List.length iov_i = List.length iov_p
      && List.for_all2 Buf.same_memory iov_i iov_p)

let prop_sequential_ranges_equiv =
  QCheck.Test.make
    ~name:"plan: cursor pack_range/unpack_range = interpreter (any frag size)"
    ~count:200
    QCheck.(triple arb_datatype (int_range 1 3) (int_range 1 64))
    (fun (t, count, frag) ->
      let psize = Dt.packed_size t ~count in
      QCheck.assume (psize > 0);
      let p = Plan.build t in
      let n = src_len t ~count in
      let src = pattern n in
      let whole = Buf.create psize in
      ignore (Dt.pack t ~count ~src ~dst:whole);
      let out = Buf.create psize in
      let back = Buf.create n in
      let cur_p = Plan.cursor p and cur_u = Plan.cursor p in
      let off = ref 0 and ok = ref true in
      while !off < psize do
        let len = min frag (psize - !off) in
        let np =
          Plan.pack_range ~cursor:cur_p p ~count ~src ~packed_off:!off
            ~dst:(Buf.sub out ~pos:!off ~len)
        in
        let nu =
          Plan.unpack_range ~cursor:cur_u p ~count
            ~src:(Buf.sub whole ~pos:!off ~len)
            ~packed_off:!off ~dst:back
        in
        if np <> len || nu <> len then ok := false;
        off := !off + len
      done;
      let expect_back = Buf.create n in
      Dt.unpack t ~count ~src:whole ~dst:expect_back;
      !ok && Buf.equal whole out && Buf.equal expect_back back
      && Plan.cursor_reseeks cur_p = 0
      && Plan.cursor_reseeks cur_u = 0)

(* Deterministic shuffle so the property stays reproducible from the
   qcheck seed alone. *)
let shuffle seed l =
  let st = Random.State.make [| seed |] in
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let prop_out_of_order_ranges_equiv =
  QCheck.Test.make
    ~name:"plan: out-of-order fragments (cursor reseek) = interpreter"
    ~count:200
    QCheck.(
      quad arb_datatype (int_range 1 3) (int_range 1 32) (int_range 0 1000))
    (fun (t, count, frag, seed) ->
      let psize = Dt.packed_size t ~count in
      QCheck.assume (psize > 0);
      let p = Plan.build t in
      let n = src_len t ~count in
      let src = pattern n in
      let whole = Buf.create psize in
      ignore (Dt.pack t ~count ~src ~dst:whole);
      (* the same cursor serves fragments in shuffled order *)
      let offs =
        let rec go o acc = if o >= psize then acc else go (o + frag) (o :: acc) in
        shuffle seed (go 0 [])
      in
      let out = Buf.create psize in
      let back = Buf.create n in
      let cur_p = Plan.cursor p and cur_u = Plan.cursor p in
      let ok = ref true in
      List.iter
        (fun off ->
          let len = min frag (psize - off) in
          let np =
            Plan.pack_range ~cursor:cur_p p ~count ~src ~packed_off:off
              ~dst:(Buf.sub out ~pos:off ~len)
          in
          let nu =
            Plan.unpack_range ~cursor:cur_u p ~count
              ~src:(Buf.sub whole ~pos:off ~len)
              ~packed_off:off ~dst:back
          in
          if np <> len || nu <> len then ok := false)
        offs;
      let expect_back = Buf.create n in
      Dt.unpack t ~count ~src:whole ~dst:expect_back;
      !ok && Buf.equal whole out && Buf.equal expect_back back)

let suite =
  ( "plan",
    [
      Alcotest.test_case "queries mirror interpreter" `Quick test_queries;
      Alcotest.test_case "cache hit/miss + stats" `Quick test_cache_hit_miss;
      Alcotest.test_case "stats parity with interpreter" `Quick
        test_stats_parity;
      Alcotest.test_case "cursor resume/reseek" `Quick
        test_cursor_resume_and_reseek;
      QCheck_alcotest.to_alcotest prop_pack_unpack_iovec_equiv;
      QCheck_alcotest.to_alcotest prop_sequential_ranges_equiv;
      QCheck_alcotest.to_alcotest prop_out_of_order_ranges_equiv;
    ] )
