(* Tests for the classic MPI derived-datatype engine. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Rng = Mpicd_simnet.Rng

let check_int = Alcotest.(check int)

let buf_of_bytes lst =
  let b = Buf.create (List.length lst) in
  List.iteri (fun i v -> Buf.set_u8 b i v) lst;
  b

(* Deterministic byte fill, shared with the plan/normalize suites. *)
let pattern = Dt_gen.pattern

(* Reference pack via the signature/raw block walk. *)
let pack_simple t ~count ~src =
  let dst = Buf.create (Dt.packed_size t ~count) in
  let n = Dt.pack t ~count ~src ~dst in
  check_int "pack returns packed_size" (Dt.packed_size t ~count) n;
  dst

let roundtrip ?(count = 1) t src_len =
  let src = pattern src_len in
  let packed = pack_simple t ~count ~src in
  let dst = Buf.create src_len in
  Dt.unpack t ~count ~src:packed ~dst;
  (src, packed, dst)

(* Check that unpack(pack(x)) only touches the typed bytes: all typed
   blocks equal, everything else zero in dst. *)
let check_typed_equal t ~count ~src ~dst =
  Dt.iter_blocks t ~count ~f:(fun ~disp ~len ->
      for i = disp to disp + len - 1 do
        if Buf.get_u8 src i <> Buf.get_u8 dst i then
          Alcotest.failf "byte %d differs after roundtrip" i
      done)

(* --- sizes and extents --- *)

let test_predefined_sizes () =
  check_int "byte" 1 (Dt.size Dt.byte);
  check_int "char" 1 (Dt.size Dt.char);
  check_int "i16" 2 (Dt.size Dt.int16);
  check_int "i32" 4 (Dt.size Dt.int32);
  check_int "i64" 8 (Dt.size Dt.int64);
  check_int "f32" 4 (Dt.size Dt.float32);
  check_int "f64" 8 (Dt.size Dt.float64);
  check_int "extent = size for predefined" 8 (Dt.extent Dt.float64)

let test_contiguous () =
  let t = Dt.contiguous 10 Dt.int32 in
  check_int "size" 40 (Dt.size t);
  check_int "extent" 40 (Dt.extent t);
  Alcotest.(check bool) "contiguous" true (Dt.is_contiguous t);
  check_int "one block" 1 (Dt.blocks_per_element t)

let test_contiguous_zero () =
  let t = Dt.contiguous 0 Dt.int32 in
  check_int "size" 0 (Dt.size t);
  check_int "extent" 0 (Dt.extent t)

let test_vector () =
  (* 3 blocks of 2 ints, stride 4 ints: |XX..|XX..|XX| *)
  let t = Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.int32 in
  check_int "size" 24 (Dt.size t);
  check_int "extent" ((2 * 16) + 8) (Dt.extent t);
  check_int "blocks" 3 (Dt.blocks_per_element t);
  Alcotest.(check bool) "not contiguous" false (Dt.is_contiguous t);
  Alcotest.(check (list (pair int int)))
    "block list"
    [ (0, 8); (16, 8); (32, 8) ]
    (Dt.block_list t ~count:1)

let test_vector_unit_stride_merges () =
  let t = Dt.vector ~count:4 ~blocklength:3 ~stride:3 Dt.int32 in
  check_int "merged to one block" 1 (Dt.blocks_per_element t);
  Alcotest.(check bool) "contiguous" true (Dt.is_contiguous t)

let test_hvector () =
  let t = Dt.hvector ~count:2 ~blocklength:1 ~stride_bytes:10 Dt.int32 in
  check_int "size" 8 (Dt.size t);
  check_int "extent" 14 (Dt.extent t);
  Alcotest.(check (list (pair int int)))
    "blocks" [ (0, 4); (10, 4) ] (Dt.block_list t ~count:1)

let test_indexed () =
  let t =
    Dt.indexed ~blocklengths:[| 2; 1 |] ~displacements:[| 0; 4 |] Dt.int32
  in
  check_int "size" 12 (Dt.size t);
  Alcotest.(check (list (pair int int)))
    "blocks" [ (0, 8); (16, 4) ] (Dt.block_list t ~count:1)

let test_indexed_block () =
  let t = Dt.indexed_block ~blocklength:2 ~displacements:[| 0; 3; 6 |] Dt.int16 in
  check_int "size" 12 (Dt.size t);
  Alcotest.(check (list (pair int int)))
    "blocks" [ (0, 4); (6, 4); (12, 4) ] (Dt.block_list t ~count:1)

let test_hindexed_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Datatype.hindexed: array length mismatch") (fun () ->
      ignore
        (Dt.hindexed ~blocklengths:[| 1 |] ~displacements_bytes:[| 0; 4 |]
           Dt.int32))

(* The paper's struct-simple: 3 x i32 + gap + f64 (C layout, 24 bytes). *)
let struct_simple =
  Dt.struct_ ~blocklengths:[| 3; 1 |] ~displacements_bytes:[| 0; 16 |]
    ~types:[| Dt.int32; Dt.float64 |]

let test_struct_with_gap () =
  let t = Dt.resized ~lb:0 ~extent:24 struct_simple in
  check_int "size" 20 (Dt.size t);
  check_int "extent" 24 (Dt.extent t);
  Alcotest.(check bool) "gap -> not contiguous" false (Dt.is_contiguous t);
  check_int "two blocks" 2 (Dt.blocks_per_element t);
  (* Two elements: blocks do not merge across the gap. *)
  Alcotest.(check (list (pair int int)))
    "two elements (f64 merges into next element's ints)"
    [ (0, 12); (16, 20); (40, 8) ]
    (Dt.block_list t ~count:2)

let test_struct_no_gap_contiguous () =
  (* struct-simple-no-gap: 2 x i32 + f64 = 16 bytes, no padding. *)
  let t =
    Dt.struct_ ~blocklengths:[| 2; 1 |] ~displacements_bytes:[| 0; 8 |]
      ~types:[| Dt.int32; Dt.float64 |]
  in
  check_int "size" 16 (Dt.size t);
  check_int "extent" 16 (Dt.extent t);
  Alcotest.(check bool) "contiguous" true (Dt.is_contiguous t);
  (* Multiple elements merge into a single wire block. *)
  Alcotest.(check (list (pair int int)))
    "fully merged" [ (0, 64) ]
    (Dt.block_list t ~count:4)

let test_resized_tiling () =
  let t = Dt.resized ~lb:0 ~extent:8 (Dt.contiguous 1 Dt.int32) in
  Alcotest.(check (list (pair int int)))
    "strided tiling"
    [ (0, 4); (8, 4); (16, 4) ]
    (Dt.block_list t ~count:3)

let test_subarray_2d () =
  (* 4x6 i32 matrix, take rows 1-2, cols 2-4 (C order). *)
  let t =
    Dt.subarray ~sizes:[| 4; 6 |] ~subsizes:[| 2; 3 |] ~starts:[| 1; 2 |]
      ~order:`C Dt.int32
  in
  check_int "size" (2 * 3 * 4) (Dt.size t);
  check_int "extent covers whole array" (4 * 6 * 4) (Dt.extent t);
  Alcotest.(check (list (pair int int)))
    "blocks"
    [ ((6 + 2) * 4, 12); ((12 + 2) * 4, 12) ]
    (Dt.block_list t ~count:1)

let test_subarray_fortran () =
  (* Same region expressed in Fortran (column-major) order. *)
  let c =
    Dt.subarray ~sizes:[| 4; 6 |] ~subsizes:[| 2; 3 |] ~starts:[| 1; 2 |]
      ~order:`C Dt.int32
  in
  let f =
    Dt.subarray ~sizes:[| 6; 4 |] ~subsizes:[| 3; 2 |] ~starts:[| 2; 1 |]
      ~order:`Fortran Dt.int32
  in
  Alcotest.(check (list (pair int int)))
    "same blocks" (Dt.block_list c ~count:1) (Dt.block_list f ~count:1)

let test_subarray_invalid () =
  Alcotest.check_raises "region exceeds array"
    (Invalid_argument "Datatype.subarray: invalid sub-region") (fun () ->
      ignore
        (Dt.subarray ~sizes:[| 4 |] ~subsizes:[| 3 |] ~starts:[| 2 |] ~order:`C
           Dt.int32))

(* --- pack/unpack --- *)

let test_pack_contiguous () =
  let t = Dt.contiguous 4 Dt.int32 in
  let src = pattern 16 in
  let packed = pack_simple t ~count:1 ~src in
  Alcotest.(check bool) "identical bytes" true (Buf.equal src packed)

let test_pack_vector_gathers () =
  let t = Dt.vector ~count:2 ~blocklength:1 ~stride:2 Dt.uint8 in
  let src = buf_of_bytes [ 1; 2; 3; 4 ] in
  let packed = pack_simple t ~count:1 ~src in
  Alcotest.(check (list int)) "gathered" [ 1; 3 ]
    [ Buf.get_u8 packed 0; Buf.get_u8 packed 1 ]

let test_roundtrip_struct_gap () =
  let t = Dt.resized ~lb:0 ~extent:24 struct_simple in
  let src, _packed, dst = roundtrip ~count:5 t (24 * 5) in
  check_typed_equal t ~count:5 ~src ~dst;
  (* gap bytes must remain zero *)
  for e = 0 to 4 do
    for i = 12 to 15 do
      check_int "gap untouched" 0 (Buf.get_u8 dst ((e * 24) + i))
    done
  done

let test_unpack_wrong_size () =
  let t = Dt.contiguous 4 Dt.int32 in
  let src = Buf.create 15 in
  let dst = Buf.create 16 in
  match Dt.unpack t ~count:1 ~src ~dst with
  | () -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ()

let test_pack_range_full_equiv () =
  let t = Dt.vector ~count:5 ~blocklength:3 ~stride:7 Dt.int32 in
  let count = 3 in
  let src = pattern (Dt.extent t * count) in
  let whole = pack_simple t ~count ~src in
  let psize = Dt.packed_size t ~count in
  (* Pack the same stream fragment by fragment with awkward sizes. *)
  let frag = 13 in
  let out = Buf.create psize in
  let off = ref 0 in
  while !off < psize do
    let len = min frag (psize - !off) in
    let dst = Buf.sub out ~pos:!off ~len in
    let n = Dt.pack_range t ~count ~src ~packed_off:!off ~dst in
    check_int "fragment filled" len n;
    off := !off + len
  done;
  Alcotest.(check bool) "matches whole pack" true (Buf.equal whole out)

let test_pack_range_past_end () =
  let t = Dt.contiguous 2 Dt.int32 in
  let src = pattern 8 in
  let dst = Buf.create 16 in
  let n = Dt.pack_range t ~count:1 ~src ~packed_off:0 ~dst in
  check_int "short write at end" 8 n;
  let n2 = Dt.pack_range t ~count:1 ~src ~packed_off:8 ~dst in
  check_int "empty past end" 0 n2

let test_unpack_range_fragments () =
  let t = Dt.indexed ~blocklengths:[| 1; 2 |] ~displacements:[| 0; 2 |] Dt.int32 in
  let count = 4 in
  let src = pattern (Dt.extent t * count) in
  let packed = pack_simple t ~count ~src in
  let dst = Buf.create (Dt.extent t * count) in
  let psize = Dt.packed_size t ~count in
  let frag = 5 in
  let off = ref 0 in
  while !off < psize do
    let len = min frag (psize - !off) in
    let consumed =
      Dt.unpack_range t ~count ~src:(Buf.sub packed ~pos:!off ~len)
        ~packed_off:!off ~dst
    in
    check_int "unpack_range consumed" len consumed;
    off := !off + len
  done;
  check_typed_equal t ~count ~src ~dst

let test_iovec_zero_copy () =
  let t = Dt.vector ~count:2 ~blocklength:2 ~stride:4 Dt.int32 in
  let base = pattern (Dt.extent t) in
  let iov = Dt.iovec t ~count:1 ~base in
  check_int "two regions" 2 (List.length iov);
  List.iter
    (fun r -> Alcotest.(check bool) "aliases base" true (Buf.overlaps r base))
    iov;
  check_int "total bytes" (Dt.size t)
    (List.fold_left (fun acc r -> acc + Buf.length r) 0 iov)

let test_signature () =
  let t =
    Dt.struct_ ~blocklengths:[| 2; 1 |] ~displacements_bytes:[| 0; 8 |]
      ~types:[| Dt.int32; Dt.float64 |]
  in
  Alcotest.(check int) "signature length" 3 (List.length (Dt.signature t));
  let t2 = Dt.contiguous 1 t in
  Alcotest.(check bool) "equal signatures" true (Dt.equal_signature t t2);
  Alcotest.(check bool) "different signatures" false
    (Dt.equal_signature t (Dt.contiguous 3 Dt.int32))

let test_stats_blocks () =
  let stats = Mpicd_simnet.Stats.create () in
  let t = Dt.vector ~count:4 ~blocklength:1 ~stride:2 Dt.int32 in
  let src = pattern (Dt.extent t) in
  let dst = Buf.create (Dt.size t) in
  ignore (Dt.pack ~stats t ~count:1 ~src ~dst);
  check_int "blocks recorded" 4 stats.ddt_blocks_processed;
  check_int "bytes recorded" 16 stats.bytes_copied

let test_negative_args () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () -> Dt.contiguous (-1) Dt.byte);
  expect (fun () -> Dt.vector ~count:(-1) ~blocklength:1 ~stride:1 Dt.byte);
  expect (fun () -> Dt.vector ~count:1 ~blocklength:(-2) ~stride:1 Dt.byte);
  expect (fun () -> Dt.resized ~lb:0 ~extent:(-8) Dt.byte)

(* --- marshalling --- *)

let test_serialize_roundtrip_cases () =
  let cases =
    [
      Dt.byte;
      Dt.contiguous 5 Dt.int32;
      Dt.vector ~count:3 ~blocklength:2 ~stride:4 Dt.float64;
      Dt.indexed ~blocklengths:[| 2; 1 |] ~displacements:[| 0; 4 |] Dt.int32;
      struct_simple;
      Dt.resized ~lb:0 ~extent:24 struct_simple;
      Dt.subarray ~sizes:[| 4; 6 |] ~subsizes:[| 2; 3 |] ~starts:[| 1; 2 |]
        ~order:`C Dt.int32;
    ]
  in
  List.iter
    (fun t ->
      let t' = Dt.deserialize (Dt.serialize t) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Dt.to_string t))
        true (Dt.equal t t'))
    cases

let test_deserialize_corrupt () =
  let expect f =
    match f () with
    | _ -> Alcotest.fail "expected Corrupt_datatype"
    | exception Dt.Corrupt_datatype _ -> ()
  in
  expect (fun () -> Dt.deserialize (Buf.create 0));
  expect (fun () -> Dt.deserialize (Buf.of_string "\x63"));
  (let good = Dt.serialize (Dt.contiguous 3 Dt.int64) in
   expect (fun () ->
       Dt.deserialize (Buf.sub good ~pos:0 ~len:(Buf.length good - 1))));
  (let good = Dt.serialize Dt.byte in
   let padded = Buf.concat [ good; Buf.create 1 ] in
   expect (fun () -> Dt.deserialize padded))

(* --- property tests --- *)

(* Random datatype generator: shared with the plan/normalize suites
   (see dt_gen.ml, which also adds structural shrinking). *)
let arb_datatype = Dt_gen.arb

let prop_pack_unpack_roundtrip =
  QCheck.Test.make ~name:"datatype: unpack(pack(x)) = x on typed bytes"
    ~count:200
    QCheck.(pair arb_datatype (int_range 1 4))
    (fun (t, count) ->
      let need = Dt.ub t + ((count - 1) * Dt.extent t) + 1 in
      let src = pattern (max need 1) in
      let packed = Buf.create (Dt.packed_size t ~count) in
      ignore (Dt.pack t ~count ~src ~dst:packed);
      let dst = Buf.create (max need 1) in
      Dt.unpack t ~count ~src:packed ~dst;
      let ok = ref true in
      Dt.iter_blocks t ~count ~f:(fun ~disp ~len ->
          for i = disp to disp + len - 1 do
            if Buf.get_u8 src i <> Buf.get_u8 dst i then ok := false
          done);
      !ok)

let prop_pack_range_equiv =
  QCheck.Test.make
    ~name:"datatype: fragmented pack_range = whole pack (any fragment size)"
    ~count:200
    QCheck.(triple arb_datatype (int_range 1 3) (int_range 1 64))
    (fun (t, count, frag) ->
      let psize = Dt.packed_size t ~count in
      QCheck.assume (psize > 0);
      let src = pattern (max 1 (Dt.ub t + ((count - 1) * Dt.extent t))) in
      let whole = Buf.create psize in
      ignore (Dt.pack t ~count ~src ~dst:whole);
      let out = Buf.create psize in
      let off = ref 0 in
      while !off < psize do
        let len = min frag (psize - !off) in
        let n =
          Dt.pack_range t ~count ~src ~packed_off:!off
            ~dst:(Buf.sub out ~pos:!off ~len)
        in
        if n <> len then failwith "short fragment";
        off := !off + len
      done;
      Buf.equal whole out)

let prop_blocks_cover_size =
  QCheck.Test.make ~name:"datatype: block lengths sum to size" ~count:300
    QCheck.(pair arb_datatype (int_range 1 4))
    (fun (t, count) ->
      let total =
        List.fold_left
          (fun acc (_, l) -> acc + l)
          0
          (Dt.block_list t ~count)
      in
      total = Dt.packed_size t ~count)

let prop_signature_size =
  QCheck.Test.make ~name:"datatype: signature sizes sum to size" ~count:300
    arb_datatype
    (fun t ->
      List.fold_left (fun acc p -> acc + Dt.predefined_size p) 0 (Dt.signature t)
      = Dt.size t)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"datatype: serialize/deserialize identity" ~count:300
    arb_datatype
    (fun t -> Dt.equal t (Dt.deserialize (Dt.serialize t)))

let prop_iovec_matches_pack =
  QCheck.Test.make ~name:"datatype: concat(iovec) = pack" ~count:200
    QCheck.(pair arb_datatype (int_range 1 3))
    (fun (t, count) ->
      let src = pattern (max 1 (Dt.ub t + ((count - 1) * Dt.extent t))) in
      let packed = Buf.create (Dt.packed_size t ~count) in
      ignore (Dt.pack t ~count ~src ~dst:packed);
      let iov = Dt.iovec t ~count ~base:src in
      Buf.equal packed (Buf.concat iov))

let suite =
  let tc = Alcotest.test_case in
  ( "datatype",
    [
      tc "predefined sizes" `Quick test_predefined_sizes;
      tc "contiguous" `Quick test_contiguous;
      tc "contiguous zero count" `Quick test_contiguous_zero;
      tc "vector" `Quick test_vector;
      tc "vector unit-stride merges" `Quick test_vector_unit_stride_merges;
      tc "hvector" `Quick test_hvector;
      tc "indexed" `Quick test_indexed;
      tc "indexed_block" `Quick test_indexed_block;
      tc "hindexed length mismatch" `Quick test_hindexed_mismatch;
      tc "struct with gap" `Quick test_struct_with_gap;
      tc "struct no gap is contiguous" `Quick test_struct_no_gap_contiguous;
      tc "resized tiling" `Quick test_resized_tiling;
      tc "subarray 2d" `Quick test_subarray_2d;
      tc "subarray fortran order" `Quick test_subarray_fortran;
      tc "subarray invalid region" `Quick test_subarray_invalid;
      tc "pack contiguous is identity" `Quick test_pack_contiguous;
      tc "pack vector gathers" `Quick test_pack_vector_gathers;
      tc "roundtrip struct with gap" `Quick test_roundtrip_struct_gap;
      tc "unpack wrong size" `Quick test_unpack_wrong_size;
      tc "pack_range fragments = whole" `Quick test_pack_range_full_equiv;
      tc "pack_range past end" `Quick test_pack_range_past_end;
      tc "unpack_range fragments" `Quick test_unpack_range_fragments;
      tc "iovec zero copy" `Quick test_iovec_zero_copy;
      tc "signature" `Quick test_signature;
      tc "stats count blocks" `Quick test_stats_blocks;
      tc "negative arguments" `Quick test_negative_args;
      tc "serialize roundtrip cases" `Quick test_serialize_roundtrip_cases;
      tc "deserialize corrupt input" `Quick test_deserialize_corrupt;
      QCheck_alcotest.to_alcotest prop_pack_unpack_roundtrip;
      QCheck_alcotest.to_alcotest prop_pack_range_equiv;
      QCheck_alcotest.to_alcotest prop_blocks_cover_size;
      QCheck_alcotest.to_alcotest prop_signature_size;
      QCheck_alcotest.to_alcotest prop_iovec_matches_pack;
      QCheck_alcotest.to_alcotest prop_serialize_roundtrip;
    ] )
