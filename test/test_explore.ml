(* Tests for the fault-space explorer and the partition/straggler fault
   kinds it drives: detector bounds under partitions and stragglers,
   crash-during-partition recovery, the explorer pipeline itself
   (record / search / shrink / replay / repro artifacts), and the
   seeded-mutation self-check that proves the explorer still catches
   the class of bug it exists for. *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Engine = Mpicd_simnet.Engine
module Ucx = Mpicd_ucx.Ucx
module Mpi = Mpicd.Mpi
module Explore = Mpicd_explore_lib.Explore
module Workloads = Mpicd_explore_lib.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 31 + 7) land 0xff)
  done;
  b

(* Run one 2-rank transfer under [plan]; return (stats, elapsed_ns). *)
let run_pair ?(len = 512) ?config plan =
  let w =
    match config with
    | Some c -> Mpi.create_world ~config:c ~size:2 ()
    | None -> Mpi.create_world ~size:2 ()
  in
  Mpi.set_faults w (Some plan);
  let src = pattern len and dst = Buf.create len in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes src)
      else ignore (Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes dst)));
  check_bool "payload intact" true (Buf.equal src dst);
  (Mpi.world_stats w, Engine.now (Mpi.world_engine w))

(* --- partitions --- *)

(* A partition that heals inside the retry budget: the detector must
   never declare anyone (partitions are not failures), and the dropped
   fragments must all be made up by retransmission. *)
let test_partition_heal_no_declaration () =
  let plan =
    Fault.make
      ~partitions:
        [ { Fault.part_group = [ 1 ]; part_start_ns = 0.; part_dur_ns = 20_000. } ]
      ~rto_ns:5_000. ~max_retries:6 ~hb_period_ns:50_000. ()
  in
  let stats, _ = run_pair plan in
  check_bool "partition dropped traffic" true (stats.Stats.partition_drops > 0);
  check_bool "drops were retransmitted" true (stats.Stats.retransmits > 0);
  check_int "no rank declared failed under a heal-before-budget partition" 0
    stats.Stats.failures_detected

(* The partitioned predicate itself: cut iff exactly one endpoint is
   inside the group and the window is open. *)
let test_partitioned_predicate () =
  let plan =
    Fault.make
      ~partitions:
        [
          { Fault.part_group = [ 0; 2 ]; part_start_ns = 100.; part_dur_ns = 50. };
        ]
      ()
  in
  let cut src dst now = Fault.partitioned plan ~src ~dst ~now in
  check_bool "cross-cut link is cut" true (cut 0 1 120.);
  check_bool "cut is symmetric" true (cut 1 0 120.);
  check_bool "inside the group is not cut" false (cut 0 2 120.);
  check_bool "outside the group is not cut" false (cut 1 3 120.);
  check_bool "closed before start" false (cut 0 1 99.);
  check_bool "healed at start+dur" false (cut 0 1 150.)

(* --- stragglers --- *)

let straggle_elapsed ~factor =
  let plan =
    match factor with
    | None -> Fault.make ~rto_ns:5_000. ~max_retries:4 ~hb_period_ns:50_000. ()
    | Some f ->
        Fault.make
          ~stragglers:[ (1, f) ]
          ~rto_ns:5_000. ~max_retries:4 ~hb_period_ns:50_000. ()
  in
  run_pair ~len:2048 plan

(* A straggler below the detector's false-positive threshold: the run
   slows down but nobody is declared failed and no error surfaces. *)
let test_straggler_below_threshold () =
  let base_stats, base_t = straggle_elapsed ~factor:None in
  let slow_stats, slow_t = straggle_elapsed ~factor:(Some 8.) in
  check_int "baseline: no declarations" 0 base_stats.Stats.failures_detected;
  check_int "sub-threshold straggler: no false positive" 0
    slow_stats.Stats.failures_detected;
  check_bool "straggler actually slows the run" true (slow_t > base_t)

(* A straggler past the threshold is falsely declared (slow-vs-dead
   ambiguity), at exactly hb_period + f * 2 * latency. *)
let test_straggler_above_threshold_declared () =
  let hb = 10_000. in
  let lat = Config.default.Config.link.Config.latency_ns in
  (* pick f with f * 2 * lat > hb + 2 * lat *)
  let f = ((hb +. (2. *. lat)) /. (2. *. lat)) +. 1. in
  let plan =
    Fault.make ~stragglers:[ (1, f) ] ~rto_ns:5_000. ~max_retries:6
      ~hb_period_ns:hb ()
  in
  let engine = Engine.create () in
  let ctx =
    Ucx.create_context ~engine ~config:Config.default ~stats:(Stats.create ())
  in
  ignore (Ucx.create_worker ctx);
  ignore (Ucx.create_worker ctx);
  let declared = ref [] in
  Ucx.on_failure ctx (fun ~rank ~time -> declared := (rank, time) :: !declared);
  Ucx.set_faults ctx (Some plan);
  Engine.run engine;
  match !declared with
  | [ (rank, time) ] ->
      check_int "the straggler is the rank declared" 1 rank;
      Alcotest.(check (float 0.))
        "declared at hb_period + f * 2 * latency"
        (hb +. (f *. 2. *. lat))
        time
  | ds -> Alcotest.failf "expected exactly one declaration, saw %d" (List.length ds)

(* --- crash during partition --- *)

(* A rank crashes while a partition is open: recovery must still
   converge once the partition heals — survivors of the resilient
   allreduce all commit the same value. *)
let test_crash_during_partition_recovery () =
  let wl = Workloads.allreduce in
  let plan =
    {
      wl.Workloads.wl_base with
      Fault.crashes = [ (2, 2_000.) ];
      partitions =
        [ { Fault.part_group = [ 1 ]; part_start_ns = 1_000.; part_dur_ns = 15_000. } ];
    }
  in
  let res = wl.Workloads.wl_run plan in
  check_string "oracle clean: survivors recovered uniformly" ""
    (String.concat "; " res.Workloads.res_failures)

(* --- the explorer pipeline --- *)

let test_record_points_stable () =
  let wl = Workloads.revoke_rescue in
  let tl1 = Explore.record wl in
  let tl2 = Explore.record wl in
  check_bool "some injection points" true (tl1.Explore.tl_points <> []);
  check_string "recording is deterministic"
    (String.concat "," (List.map Explore.fault_id tl1.Explore.tl_points))
    (String.concat "," (List.map Explore.fault_id tl2.Explore.tl_points));
  let kinds =
    List.sort_uniq compare
      (List.map Explore.kind_of_fault tl1.Explore.tl_points)
  in
  check_bool "all five fault kinds have points" true
    (List.length kinds = List.length Explore.all_kinds)

let test_plan_of_schedule_is_a_set () =
  let wl = Workloads.revoke_rescue in
  let a = Explore.F_crash (1, 5_000.) and b = Explore.F_straggle (2, 4.) in
  let p1 = Explore.plan_of_schedule wl.Workloads.wl_base [ a; b ] in
  let p2 = Explore.plan_of_schedule wl.Workloads.wl_base [ b; a ] in
  check_string "schedule order does not change the plan"
    (Fault.to_string p1) (Fault.to_string p2)

let test_search_clean_and_deterministic () =
  let wl = Workloads.allreduce in
  let tl = Explore.record wl in
  let r1 = Explore.search ~k:1 ~budget:100 wl tl in
  let r2 = Explore.search ~k:1 ~budget:100 wl tl in
  check_bool "sweep ran" true (r1.Explore.rp_runs > 0);
  check_bool "not truncated" false r1.Explore.rp_truncated;
  check_int "no counterexamples on the real stack" 0
    (List.length r1.Explore.rp_cexs);
  check_int "same runs on re-execution" r1.Explore.rp_runs r2.Explore.rp_runs;
  check_int "same classes on re-execution" r1.Explore.rp_classes
    r2.Explore.rp_classes;
  check_bool "fingerprint pruning collapses equivalent faults" true
    (r1.Explore.rp_classes < r1.Explore.rp_points)

let test_search_budget_truncates_loudly () =
  let wl = Workloads.allreduce in
  let tl = Explore.record wl in
  let r = Explore.search ~k:1 ~budget:5 wl tl in
  check_int "budget respected" 5 r.Explore.rp_runs;
  check_bool "truncation is reported, never silent" true r.Explore.rp_truncated

let test_random_mode_deterministic_per_seed () =
  let wl = Workloads.allreduce in
  let tl = Explore.record wl in
  let run seed =
    let r =
      Explore.search ~mode:Explore.Random ~seed ~k:2 ~budget:30 wl tl
    in
    List.map (fun c -> Fault.to_string c.Explore.cex_plan) r.Explore.rp_cexs
  in
  check_bool "same seed, same schedules explored" true (run 7 = run 7);
  let r = Explore.search ~mode:Explore.Random ~seed:7 ~k:2 ~budget:30 wl tl in
  check_int "random mode is clean too" 0 (List.length r.Explore.rp_cexs)

(* With the seeded revoke_oneshot mutation on, the explorer must find
   the regression, shrink it to <= 2 faults (1-minimal), and the
   artifact must replay byte-identically; with the mutation off, the
   same bounded-exhaustive k=2 sweep must report zero counterexamples.
   This mirrors `mpicd_explore --self-check` in-process. *)
let test_mutation_self_check () =
  let wl = Workloads.revoke_rescue in
  Fun.protect
    ~finally:(fun () -> Mpi.Mutation.revoke_oneshot := false)
    (fun () ->
      Mpi.Mutation.revoke_oneshot := true;
      let tl = Explore.record wl in
      let r = Explore.search ~k:2 ~budget:400 wl tl in
      let c =
        match r.Explore.rp_cexs with
        | c :: _ -> c
        | [] -> Alcotest.fail "seeded revoke_oneshot bug not found"
      in
      let s = Explore.shrink wl c in
      let n = List.length s.Explore.cex_sched in
      check_bool "shrunk to <= 2 faults" true (n <= 2);
      check_string "failure category preserved by shrinking"
        (Explore.category c.Explore.cex_failures)
        (Explore.category s.Explore.cex_failures);
      (* 1-minimality: removing any remaining fault loses the failure *)
      List.iteri
        (fun i _ ->
          let sub = List.filteri (fun j _ -> j <> i) s.Explore.cex_sched in
          let sub_plan =
            Explore.plan_of_schedule wl.Workloads.wl_base sub
          in
          let sub_res = wl.Workloads.wl_run sub_plan in
          if
            sub_res.Workloads.res_failures <> []
            && Explore.category sub_res.Workloads.res_failures
               = Explore.category s.Explore.cex_failures
          then Alcotest.failf "shrunk schedule is not 1-minimal at fault %d" i)
        s.Explore.cex_sched;
      (match Explore.replay wl s.Explore.cex_plan with
      | Error e -> Alcotest.failf "replay diverged: %s" e
      | Ok res ->
          check_string "replay is byte-identical" s.Explore.cex_render
            res.Workloads.res_render);
      (* repro artifact roundtrip *)
      let json =
        Explore.repro_to_json ~wl ~mutations:[ "revoke_oneshot" ] s
      in
      match Explore.repro_of_json json with
      | Error e -> Alcotest.failf "repro roundtrip: %s" e
      | Ok rj ->
          check_string "workload survives the roundtrip"
            wl.Workloads.wl_name rj.Explore.rj_workload;
          check_string "plan survives the roundtrip"
            (Fault.to_string s.Explore.cex_plan)
            (Fault.to_string rj.Explore.rj_plan);
          check_string "render survives the roundtrip" s.Explore.cex_render
            rj.Explore.rj_render;
          check_bool "mutation flag recorded" true
            (rj.Explore.rj_mutations = [ "revoke_oneshot" ]));
  (* mutation off: the identical sweep is clean *)
  let tl = Explore.record wl in
  let r = Explore.search ~k:2 ~budget:400 wl tl in
  check_int "zero counterexamples with the mutation off" 0
    (List.length r.Explore.rp_cexs)

let test_repro_of_json_rejects_garbage () =
  (match Explore.repro_of_json "{" with
  | Ok _ -> Alcotest.fail "parsed truncated JSON"
  | Error _ -> ());
  (match Explore.repro_of_json "{}" with
  | Ok _ -> Alcotest.fail "parsed empty object"
  | Error e ->
      check_bool "names the missing field" true
        (String.length e > 0));
  match
    Explore.repro_of_json
      {|{"version": "mpicd-explore/0", "workload": "x", "size": 2,
         "plan": "", "failure": "hang", "fingerprint": "0",
         "render": "", "mutations": []}|}
  with
  | Ok _ -> Alcotest.fail "accepted an unsupported version"
  | Error e ->
      check_bool "mentions the version" true
        (String.length e > 0)

let suite =
  let tc = Alcotest.test_case in
  ( "explore",
    [
      tc "partition heals without declarations" `Quick
        test_partition_heal_no_declaration;
      tc "partitioned predicate" `Quick test_partitioned_predicate;
      tc "sub-threshold straggler: no false positive" `Quick
        test_straggler_below_threshold;
      tc "extreme straggler falsely declared at the bound" `Quick
        test_straggler_above_threshold_declared;
      tc "crash during partition recovers" `Quick
        test_crash_during_partition_recovery;
      tc "record: stable injection points" `Quick test_record_points_stable;
      tc "plan_of_schedule treats schedules as sets" `Quick
        test_plan_of_schedule_is_a_set;
      tc "search: clean, deterministic, pruned" `Quick
        test_search_clean_and_deterministic;
      tc "search: budget truncation is loud" `Quick
        test_search_budget_truncates_loudly;
      tc "random mode deterministic per seed" `Quick
        test_random_mode_deterministic_per_seed;
      tc "seeded mutation: find, shrink, replay" `Quick
        test_mutation_self_check;
      tc "repro.json fails closed" `Quick test_repro_of_json_rejects_garbage;
    ] )
