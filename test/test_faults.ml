(* Tests for fault injection: the simnet fault plan, the transport's
   reliable-delivery protocol, and MPI-level error propagation.

   The zero-overhead test pins latency and counters to constants
   captured on the tree *before* fault injection existed: with no plan
   attached, every measurement must stay bit-identical. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Ucx = Mpicd_ucx.Ucx
module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Dt = Mpicd_datatype.Datatype
module H = Mpicd_harness.Harness
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.))

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 31 + 7) land 0xff)
  done;
  b

(* --- the Fault plan itself --- *)

let test_plan_string_roundtrip () =
  let p =
    Fault.make ~seed:9
      ~link:
        {
          Fault.clean_link with
          drop_p = 0.05;
          corrupt_p = 0.01;
          flap_period_ns = 1000.;
          flap_down_ns = 100.;
        }
      ~crashes:[ (1, 5000.) ] ~max_retries:4 ~rto_ns:1000. ~backoff:1.5
      ~rndv_timeout_ns:2000. ()
  in
  (match Fault.of_string (Fault.to_string p) with
  | Ok q -> check_bool "of_string (to_string p) = p" true (p = q)
  | Error e -> Alcotest.fail e);
  (match Fault.of_string "seed=3,drop=0.5,flap=1000/100,crash=1@5000,retries=2" with
  | Ok q ->
      check_int "seed" 3 q.Fault.seed;
      check_float "drop" 0.5 q.Fault.link.Fault.drop_p;
      check_float "flap period" 1000. q.Fault.link.Fault.flap_period_ns;
      check_float "flap down" 100. q.Fault.link.Fault.flap_down_ns;
      check_bool "crash" true (q.Fault.crashes = [ (1, 5000.) ]);
      check_int "retries" 2 q.Fault.max_retries
  | Error e -> Alcotest.fail e);
  match Fault.of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown keys must be rejected"
  | Error _ -> ()

(* Property: [of_string (to_string p) = Ok p] for any plan reachable
   from the string grammar.  Numeric fields are drawn from small pools
   of values that survive the canonical [%g] printing exactly, so the
   property tests the grammar, not float formatting. *)
let gen_plan =
  let open QCheck.Gen in
  let prob = oneofl [ 0.; 0.05; 0.1; 0.25; 0.5; 1. ] in
  let ns = oneofl [ 500.; 1000.; 2500.; 50_000.; 100_000. ] in
  let ns0 = oneofl [ 0.; 500.; 1000.; 2500.; 50_000.; 100_000. ] in
  let flap =
    oneof
      [
        return (0., 0.);
        map2 (fun a b -> (Float.max a b, Float.min a b)) ns ns;
      ]
  in
  let crash = map2 (fun r t -> (r, t)) (0 -- 7) ns in
  let injection =
    let* inj_kind = oneofl [ Fault.Inj_drop; Fault.Inj_corrupt ] in
    let* inj_src = 0 -- 7 and* inj_dst = 0 -- 7 in
    let* inj_mseq = 0 -- 30 and* inj_frag = 0 -- 4 in
    return { Fault.inj_kind; inj_src; inj_dst; inj_mseq; inj_frag }
  in
  let partition =
    let* part_group = list_size (1 -- 3) (0 -- 7) in
    let* part_start_ns = ns0 and* part_dur_ns = ns in
    return { Fault.part_group; part_start_ns; part_dur_ns }
  in
  let straggler =
    map2 (fun r f -> (r, f)) (0 -- 7) (oneofl [ 1.; 1.5; 2.; 4.; 16. ])
  in
  let* seed = 0 -- 10_000 in
  let* drop_p = prob and* corrupt_p = prob and* dup_p = prob in
  let* delay_p = prob and* delay_ns = ns0 in
  let* flap_period_ns, flap_down_ns = flap in
  let* crashes = list_size (0 -- 3) crash in
  let* injections = list_size (0 -- 3) injection in
  let* partitions = list_size (0 -- 2) partition in
  let* stragglers = list_size (0 -- 2) straggler in
  let* max_retries = 0 -- 8 in
  let* rto_ns = ns in
  let* backoff = oneofl [ 1.; 1.5; 2.; 3. ] in
  let* rndv_timeout_ns = ns0 in
  let* hb_period_ns = ns0 in
  return
    (Fault.make ~seed
       ~link:
         {
           Fault.drop_p;
           corrupt_p;
           dup_p;
           delay_p;
           delay_ns;
           flap_period_ns;
           flap_down_ns;
         }
       ~crashes ~injections ~partitions ~stragglers ~max_retries ~rto_ns
       ~backoff ~rndv_timeout_ns ~hb_period_ns ())

(* Shrinker over the plan grammar: candidates keep to the same value
   pools the generator draws from, so a shrunk counterexample is still
   a plan the generator could have produced.  Order matters — structure
   first (drop one scheduled fault), then probabilities, then knobs —
   so qcheck reports the smallest plan that still fails. *)
let shrink_plan (p : Fault.t) yield =
  let drop_one xs k =
    List.iteri (fun i _ -> k (List.filteri (fun j _ -> j <> i) xs)) xs
  in
  drop_one p.Fault.crashes (fun crashes -> yield { p with Fault.crashes });
  drop_one p.Fault.injections (fun injections ->
      yield { p with Fault.injections });
  drop_one p.Fault.partitions (fun partitions ->
      yield { p with Fault.partitions });
  drop_one p.Fault.stragglers (fun stragglers ->
      yield { p with Fault.stragglers });
  let l = p.Fault.link in
  if l.Fault.drop_p > 0. then
    yield { p with Fault.link = { l with Fault.drop_p = 0. } };
  if l.Fault.corrupt_p > 0. then
    yield { p with Fault.link = { l with Fault.corrupt_p = 0. } };
  if l.Fault.dup_p > 0. then
    yield { p with Fault.link = { l with Fault.dup_p = 0. } };
  if l.Fault.delay_p > 0. then
    yield { p with Fault.link = { l with Fault.delay_p = 0. } };
  if l.Fault.flap_period_ns > 0. then
    yield
      { p with Fault.link = { l with Fault.flap_period_ns = 0.; flap_down_ns = 0. } };
  if p.Fault.max_retries > 0 then
    yield { p with Fault.max_retries = p.Fault.max_retries / 2 };
  if p.Fault.seed > 0 then yield { p with Fault.seed = p.Fault.seed / 2 };
  if p.Fault.hb_period_ns > 0. then yield { p with Fault.hb_period_ns = 0. }

(* The shrinker must preserve grammar-reachability: every candidate it
   proposes still roundtrips through the plan string. *)
let prop_shrink_stays_in_grammar =
  QCheck.Test.make ~name:"faults: shrink candidates stay in the grammar"
    ~count:200
    (QCheck.make ~print:Fault.to_string gen_plan)
    (fun p ->
      let ok = ref true in
      shrink_plan p (fun q ->
          match Fault.of_string (Fault.to_string q) with
          | Ok q' when q' = q -> ()
          | _ -> ok := false);
      !ok)

let prop_plan_roundtrip =
  QCheck.Test.make ~name:"faults: of_string (to_string p) = p" ~count:500
    (QCheck.make ~print:Fault.to_string
       ~shrink:shrink_plan
       gen_plan)
    (fun p ->
      match Fault.of_string (Fault.to_string p) with
      | Ok q -> p = q
      | Error e -> QCheck.Test.fail_reportf "rejected own output: %s" e)

let test_malformed_plans () =
  let expect_err s frag =
    match Fault.of_string s with
    | Ok _ -> Alcotest.failf "%S parsed" s
    | Error m ->
        let has_frag =
          let fl = String.length frag and ml = String.length m in
          let rec scan i =
            i + fl <= ml && (String.sub m i fl = frag || scan (i + 1))
          in
          scan 0
        in
        if not has_frag then
          Alcotest.failf "%S: error %S does not mention %S" s m frag
  in
  expect_err "bogus=1" {|unknown key "bogus"|};
  expect_err "drop" "expected key=value";
  expect_err "drop=oops" "non-negative number";
  expect_err "drop=-0.5" "non-negative number";
  expect_err "seed=1.5" "integer";
  expect_err "crash=5" "RANK@TIME";
  expect_err "crash=x@100" "integer";
  expect_err "flap=1000" "PERIOD/DOWN";
  expect_err "flap=100/1000" "exceeds period";
  expect_err "retries=-1" "retries must be >= 0";
  expect_err "backoff=0.5" "backoff must be >= 1";
  expect_err "inj=bogus:0.1.2.3" "unknown injection kind";
  expect_err "inj=drop:0.1.2" "KIND:SRC.DST.MSEQ.FRAG";
  expect_err "part=@100+5" "part group is empty";
  expect_err "part=0@5" "GROUP@START+DUR";
  expect_err "straggle=1@0.5" "straggle factor must be >= 1";
  expect_err "straggle=1" "RANK@FACTOR"

(* --- retransmit backoff clamp --- *)

let test_backoff_clamp_boundary () =
  let cfg = { Config.default with Config.retx_backoff_max_ns = 40_000. } in
  let plan = Fault.make ~rto_ns:10_000. ~backoff:2. ~max_retries:6 () in
  check_float "attempt 0 under ceiling" 10_000.
    (Ucx.retx_backoff_ns cfg plan ~attempt:0);
  check_float "attempt 1 under ceiling" 20_000.
    (Ucx.retx_backoff_ns cfg plan ~attempt:1);
  check_float "attempt 2 hits the ceiling exactly" 40_000.
    (Ucx.retx_backoff_ns cfg plan ~attempt:2);
  check_float "attempt 3 stays clamped" 40_000.
    (Ucx.retx_backoff_ns cfg plan ~attempt:3);
  (* the default ceiling is far above the default schedule, so existing
     plans are bit-identical *)
  let dflt = Fault.make () in
  for a = 0 to dflt.Fault.max_retries do
    check_float "default schedule unclamped" (Fault.rto dflt ~attempt:a)
      (Ucx.retx_backoff_ns Config.default dflt ~attempt:a)
  done

(* One deterministic retransmit (targeted frag-0 drop) under a huge
   rto: the clamp must pull the retransmit instant forward by exactly
   the backoff it shaved off. *)
let clamp_first_retx_time ~clamp =
  let config = { Config.default with Config.retx_backoff_max_ns = clamp } in
  let plan =
    Fault.make ~rto_ns:100_000. ~max_retries:4
      ~injections:
        [
          {
            Fault.inj_kind = Fault.Inj_drop;
            inj_src = 0;
            inj_dst = 1;
            inj_mseq = 0;
            inj_frag = 0;
          };
        ]
      ()
  in
  let w = Mpi.create_world ~config ~size:2 () in
  Mpi.set_faults w (Some plan);
  let obs = Obs.create () in
  Mpi.set_obs w obs;
  let len = 256 in
  let src = pattern len and dst = Buf.create len in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes src)
      else ignore (Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes dst)));
  check_bool "payload intact" true (Buf.equal src dst);
  check_int "exactly one injection fired" 1
    (Mpi.world_stats w).Stats.injections_fired;
  match
    List.filter_map
      (fun i -> if i.Obs.i_name = "retransmit" then Some i.Obs.i_time else None)
      (Obs.instants obs)
  with
  | [ t ] -> t
  | ts -> Alcotest.failf "expected one retransmit, saw %d" (List.length ts)

let test_backoff_clamp_elapsed () =
  let slow =
    clamp_first_retx_time ~clamp:Config.default.Config.retx_backoff_max_ns
  in
  let fast = clamp_first_retx_time ~clamp:10_000. in
  check_bool "clamp pulls the retransmit forward" true (fast < slow);
  check_float "by exactly the shaved backoff" 90_000. (slow -. fast)

let test_rto_backoff () =
  let p = Fault.make ~rto_ns:1000. ~backoff:2. () in
  check_float "first timeout" 1000. (Fault.rto p ~attempt:0);
  check_float "fourth timeout" 8000. (Fault.rto p ~attempt:3)

let test_flap_window () =
  let p =
    Fault.make
      ~link:{ Fault.clean_link with flap_period_ns = 1000.; flap_down_ns = 100. }
      ()
  in
  let up now = Fault.up_at p ~src:0 ~dst:1 ~now in
  check_float "down at period start" 100. (up 50.);
  check_float "up mid-period" 500. (up 500.);
  check_float "down again next period" 2100. (up 2050.);
  let clean = Fault.make () in
  check_float "clean link never waits" 123.
    (Fault.up_at clean ~src:0 ~dst:1 ~now:123.)

let test_crash_schedule () =
  let p = Fault.make ~crashes:[ (1, 500.) ] () in
  check_bool "alive before" false (Fault.crashed p ~rank:1 ~now:499.);
  check_bool "dead at the instant" true (Fault.crashed p ~rank:1 ~now:500.);
  check_bool "other ranks unaffected" false (Fault.crashed p ~rank:0 ~now:1e12)

let test_fate_stream_determinism () =
  let p =
    Fault.make ~seed:5
      ~link:
        {
          Fault.clean_link with
          drop_p = 0.3;
          corrupt_p = 0.3;
          dup_p = 0.3;
          delay_p = 0.3;
          delay_ns = 500.;
        }
      ()
  in
  let a = Fault.start p and b = Fault.start p in
  let saw_event = ref false in
  for i = 1 to 200 do
    let fa = Fault.fate a ~src:0 ~dst:1 and fb = Fault.fate b ~src:0 ~dst:1 in
    if fa <> fb then Alcotest.failf "fate streams diverge at draw %d" i;
    if fa.Fault.f_drop || fa.Fault.f_corrupt || fa.Fault.f_dup then
      saw_event := true
  done;
  check_bool "events actually occur" true !saw_event;
  (* a clean plan draws nothing *)
  let c = Fault.start (Fault.make ()) in
  for _ = 1 to 50 do
    let f = Fault.fate c ~src:0 ~dst:1 in
    if f.Fault.f_drop || f.Fault.f_corrupt || f.Fault.f_dup || f.Fault.f_delay_ns <> 0.
    then Alcotest.fail "clean plan produced a fault"
  done

(* --- zero overhead when disabled ---

   Constants captured on the pre-fault-injection tree (same workloads,
   same seeds).  Exact float equality is the point: attaching no plan
   must leave the virtual clock and every counter untouched. *)

let bytes_impl n () =
  {
    H.send =
      (fun comm ~dst ~tag -> Mpi.send comm ~dst ~tag (Mpi.Bytes (pattern n)));
    H.recv =
      (fun comm ~source ~tag ->
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes (Buf.create n))));
  }

let test_zero_overhead_golden () =
  let kernel = Option.get (Registry.find "NAS_MG_x") in
  let (module K : Kernel.KERNEL) = kernel in
  let r =
    H.pingpong ~reps:3 ~bytes:K.wire_bytes
      (Mpicd_figures.Methods.k_custom_pack kernel)
  in
  let s = r.H.stats in
  check_float "custom_pack latency" 77.654223999999957 r.H.latency_us;
  check_float "custom_pack bandwidth" 1609.6999436888336 r.H.bandwidth_mib_s;
  check_int "custom_pack msgs" 6 s.Stats.messages_sent;
  check_int "custom_pack wire" 786432 s.Stats.bytes_on_wire;
  check_int "custom_pack rndv" 6 s.Stats.rndv_messages;
  check_int "custom_pack iov entries" 6 s.Stats.iov_entries;
  check_int "custom_pack memcpys" 13 s.Stats.memcpys;
  check_int "custom_pack copied" 1572864 s.Stats.bytes_copied;
  check_int "custom_pack allocs" 12 s.Stats.allocs;
  check_int "custom_pack allocated" 1572864 s.Stats.bytes_allocated;
  check_int "custom_pack peak alloc" 262144 s.Stats.peak_alloc_bytes;
  check_int "custom_pack pack cbs" 96 s.Stats.pack_callbacks;
  check_int "custom_pack unpack cbs" 96 s.Stats.unpack_callbacks;
  check_int "custom_pack query cbs" 12 s.Stats.query_callbacks;
  check_int "custom_pack reliability events" 0 (Stats.reliability_events s);
  let r = H.pingpong ~reps:3 ~bytes:1024 (bytes_impl 1024) in
  let s = r.H.stats in
  check_float "eager latency" 1.6902880000000007 r.H.latency_us;
  check_float "eager bandwidth" 577.74917647170162 r.H.bandwidth_mib_s;
  check_int "eager msgs" 6 s.Stats.messages_sent;
  check_int "eager wire" 6144 s.Stats.bytes_on_wire;
  check_int "eager eager" 6 s.Stats.eager_messages;
  check_int "eager memcpys" 7 s.Stats.memcpys;
  check_int "eager copied" 6144 s.Stats.bytes_copied;
  check_int "eager reliability events" 0 (Stats.reliability_events s);
  let r = H.pingpong ~reps:3 ~bytes:(128 * 1024) (bytes_impl (128 * 1024)) in
  let s = r.H.stats in
  check_float "rndv latency" 18.353263999999999 r.H.latency_us;
  check_float "rndv bandwidth" 6810.7776360651706 r.H.bandwidth_mib_s;
  check_int "rndv msgs" 6 s.Stats.messages_sent;
  check_int "rndv wire" 786432 s.Stats.bytes_on_wire;
  check_int "rndv rndv" 6 s.Stats.rndv_messages;
  check_int "rndv memcpys" 1 s.Stats.memcpys;
  check_int "rndv reliability events" 0 (Stats.reliability_events s)

(* --- fault matrix: protocol paths x fault kinds ---

   Each cell sends [iters] tagged messages 0 -> 1 under an adverse plan
   and verifies payload integrity after every delivery.  The per-plan
   assertions check the plan's fault kind actually fired somewhere in
   the sweep (per-cell counts are seed-dependent details). *)

let run_faulty ?obs ~plan ~iters mk =
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  (match obs with Some o -> Mpi.set_obs w o | None -> ());
  let send_buf, recv_buf, verify = mk () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        for i = 1 to iters do
          Mpi.send comm ~dst:1 ~tag:i (send_buf ())
        done
      else
        for i = 1 to iters do
          ignore (Mpi.recv comm ~source:0 ~tag:i (recv_buf ()));
          verify i
        done);
  Mpi.world_stats w

let bytes_path n () =
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Bytes src),
    (fun () -> Mpi.Bytes dst),
    fun r ->
      if not (Buf.equal src dst) then
        Alcotest.failf "bytes(%d): payload damaged at round %d" n r;
      Buf.fill dst '\000' )

let typed_path ~count () =
  let dt = Dt.vector ~count ~blocklength:2 ~stride:4 Dt.int32 in
  let ext = Dt.extent dt in
  let src = pattern ext in
  let dst = Buf.create ext in
  ( (fun () -> Mpi.Typed { dt; count = 1; base = src }),
    (fun () -> Mpi.Typed { dt; count = 1; base = dst }),
    fun r ->
      Dt.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
          for i = disp to disp + len - 1 do
            if Buf.get_u8 src i <> Buf.get_u8 dst i then
              Alcotest.failf "typed: byte %d damaged at round %d" i r
          done);
      Buf.fill dst '\000' )

(* Custom datatype with one zero-copy region: a 4-byte length header in
   the packed stream, the buffer itself as an iov entry.  The unpack
   callback validates the header, so header corruption is loud; region
   corruption is only caught by the transport's end-to-end check. *)
let buf_region_dt () : Buf.t Custom.t =
  Custom.create
    {
      Custom.state = (fun _ ~count:_ -> ());
      state_free = ignore;
      query = (fun () _ ~count:_ -> 4);
      pack =
        (fun () b ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (4 - offset) in
          for i = 0 to len - 1 do
            Buf.set_u8 dst i ((Buf.length b lsr (8 * (offset + i))) land 0xff)
          done;
          len);
      unpack =
        (fun () b ~count:_ ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            if (Buf.length b lsr (8 * (offset + i))) land 0xff <> Buf.get_u8 src i
            then raise (Custom.Error 99)
          done);
      region_count = Some (fun () _ ~count:_ -> 1);
      regions = Some (fun () b ~count:_ -> [| b |]);
    }

let custom_path n () =
  let dt = buf_region_dt () in
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Custom { dt; obj = src; count = 1 }),
    (fun () -> Mpi.Custom { dt; obj = dst; count = 1 }),
    fun r ->
      if not (Buf.equal src dst) then
        Alcotest.failf "custom: payload damaged at round %d" r;
      Buf.fill dst '\000' )

let fault_paths =
  [
    ("eager-contig", fun () -> bytes_path 1024 ());
    ("rndv-contig", fun () -> bytes_path (128 * 1024) ());
    ("eager-generic", fun () -> typed_path ~count:64 ());
    ("rndv-generic", fun () -> typed_path ~count:4096 ());
    ("iov-custom", fun () -> custom_path 40000 ());
  ]

let sum_reliability (total : Stats.t) (s : Stats.t) =
  total.Stats.retransmits <- total.Stats.retransmits + s.Stats.retransmits;
  total.Stats.frags_dropped <- total.Stats.frags_dropped + s.Stats.frags_dropped;
  total.Stats.frags_corrupted <-
    total.Stats.frags_corrupted + s.Stats.frags_corrupted;
  total.Stats.frags_duplicated <-
    total.Stats.frags_duplicated + s.Stats.frags_duplicated;
  total.Stats.iov_fallbacks <- total.Stats.iov_fallbacks + s.Stats.iov_fallbacks;
  total.Stats.flap_waits <- total.Stats.flap_waits + s.Stats.flap_waits;
  total.Stats.acks <- total.Stats.acks + s.Stats.acks

let sweep plan =
  let total = Stats.create () in
  List.iter
    (fun (_, mk) -> sum_reliability total (run_faulty ~plan ~iters:12 mk))
    fault_paths;
  total

let test_matrix_drop () =
  let t =
    sweep (Fault.make ~seed:11 ~link:{ Fault.clean_link with drop_p = 0.05 } ~rto_ns:5000. ())
  in
  check_bool "fragments were dropped" true (t.Stats.frags_dropped > 0);
  check_bool "drops were repaired by retransmission" true
    (t.Stats.retransmits >= t.Stats.frags_dropped)

let test_matrix_corrupt () =
  let t =
    sweep
      (Fault.make ~seed:12 ~link:{ Fault.clean_link with corrupt_p = 0.05 } ~rto_ns:5000. ())
  in
  check_bool "fragments were corrupted" true (t.Stats.frags_corrupted > 0);
  check_bool "corruption on the unchecksummed iov path fell back" true
    (t.Stats.iov_fallbacks > 0)

let test_matrix_dup () =
  let t =
    sweep (Fault.make ~seed:13 ~link:{ Fault.clean_link with dup_p = 0.1 } ())
  in
  check_bool "fragments were duplicated" true (t.Stats.frags_duplicated > 0);
  check_int "duplicates cost no retransmissions" 0 t.Stats.retransmits

let test_matrix_flap () =
  let t =
    sweep
      (Fault.make ~seed:14
         ~link:
           {
             Fault.clean_link with
             flap_period_ns = 50_000.;
             flap_down_ns = 5_000.;
           }
         ())
  in
  check_bool "senders waited out down-windows" true (t.Stats.flap_waits > 0);
  check_int "flaps alone cause no retransmissions" 0 t.Stats.retransmits

let test_matrix_delay () =
  let t =
    sweep
      (Fault.make ~seed:15
         ~link:{ Fault.clean_link with delay_p = 0.2; delay_ns = 2000. }
         ())
  in
  (* delays reorder arrivals but lose nothing *)
  check_int "no retransmissions" 0 t.Stats.retransmits;
  check_bool "transfers still acked" true (t.Stats.acks > 0)

(* --- replayability: same plan, same recovery, to the event --- *)

let reliability_fingerprint seed =
  let plan =
    Fault.make ~seed
      ~link:{ Fault.clean_link with drop_p = 0.05; corrupt_p = 0.02 }
      ~rto_ns:5000. ()
  in
  let s = run_faulty ~plan ~iters:6 (fun () -> bytes_path (128 * 1024) ()) in
  ( s.Stats.retransmits,
    s.Stats.frags_dropped,
    s.Stats.frags_corrupted,
    s.Stats.acks,
    s.Stats.nacks )

let test_fixed_seed_replay () =
  let a = reliability_fingerprint 8 in
  check_bool "same seed replays the same recovery" true
    (a = reliability_fingerprint 8);
  let retx, drops, corrupt, _, _ = a in
  check_int "seed-8 retransmits" 13 retx;
  check_int "seed-8 drops" 9 drops;
  check_int "seed-8 corruptions" 4 corrupt;
  check_bool "other seeds draw other fates" true
    (reliability_fingerprint 7 <> a || reliability_fingerprint 9 <> a)

(* --- giving up: retry exhaustion, crashes, handshake timeouts --- *)

let test_retry_exhaustion () =
  let plan =
    Fault.make
      ~link:{ Fault.clean_link with drop_p = 1.0 }
      ~max_retries:2 ~rto_ns:1000. ()
  in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let got_send = ref None and got_recv = ref None in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        match Mpi.send comm ~dst:1 ~tag:5 (Mpi.Bytes (pattern 512)) with
        | () -> Alcotest.fail "send survived a 100% lossy link"
        | exception Mpi.Mpi_error e -> got_send := Some e
      else
        match Mpi.recv comm ~source:0 ~tag:5 (Mpi.Bytes (Buf.create 512)) with
        | _ -> Alcotest.fail "recv completed on a 100% lossy link"
        | exception Mpi.Mpi_error e -> got_recv := Some e);
  (match !got_send with
  | Some (Mpi.Timeout { retries }) -> check_int "retries reported" 2 retries
  | _ -> Alcotest.fail "sender: expected Timeout");
  (match !got_recv with
  | Some (Mpi.Timeout _) -> ()
  | _ -> Alcotest.fail "receiver: expected the poison nack to carry Timeout");
  check_int "gave up exactly once" 1 (Mpi.world_stats w).Stats.delivery_timeouts

let test_peer_crash () =
  let plan = Fault.make ~crashes:[ (1, 0.) ] ~max_retries:1 ~rto_ns:1000. () in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let got = ref None in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        match Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes (pattern 256)) with
        | () -> Alcotest.fail "send to a crashed rank succeeded"
        | exception Mpi.Mpi_error e -> got := Some e
      else
        (* the crashed rank's fiber still runs (the model kills the
           link, not the code); its receive fails via the poison nack *)
        match Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes (Buf.create 256)) with
        | _ -> Alcotest.fail "recv on a crashed rank succeeded"
        | exception Mpi.Mpi_error _ -> ());
  match !got with
  | Some (Mpi.Peer_failed { peer }) -> check_int "failed peer" 1 peer
  | _ -> Alcotest.fail "expected Peer_failed on the sender"

let test_rndv_handshake_timeout () =
  let plan = Fault.make ~rndv_timeout_ns:10_000. () in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let got = ref None in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        (* rendezvous-sized send; rank 1 never posts a receive *)
        match Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes (pattern (128 * 1024))) with
        | () -> Alcotest.fail "unmatched rendezvous send completed"
        | exception Mpi.Mpi_error e -> got := Some e);
  (match !got with
  | Some (Mpi.Timeout { retries = 0 }) -> ()
  | _ -> Alcotest.fail "expected a handshake Timeout with retries = 0");
  check_int "timeout recorded" 1 (Mpi.world_stats w).Stats.delivery_timeouts

(* --- per-communicator error handlers --- *)

let lossy_plan () =
  Fault.make ~link:{ Fault.clean_link with drop_p = 1.0 } ~max_retries:1
    ~rto_ns:1000. ()

let test_errors_return () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some (lossy_plan ()));
  Mpi.run w (fun comm ->
      Mpi.set_errhandler comm Mpi.Errors_return;
      if Mpi.rank comm = 0 then begin
        Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes (pattern 256));
        (match Mpi.last_error comm with
        | Some (Mpi.Timeout _) -> ()
        | _ -> Alcotest.fail "sender: expected a stashed Timeout");
        Mpi.clear_last_error comm;
        check_bool "cleared" true (Mpi.last_error comm = None)
      end
      else begin
        let st = Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes (Buf.create 256)) in
        check_int "degraded status is empty" 0 st.Mpi.len;
        match Mpi.last_error comm with
        | Some (Mpi.Timeout _) -> ()
        | _ -> Alcotest.fail "receiver: expected a stashed Timeout"
      end)

let test_errors_abort () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some (lossy_plan ()));
  Mpi.run w (fun comm ->
      Mpi.set_errhandler comm Mpi.Errors_abort;
      if Mpi.rank comm = 0 then
        match Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes (pattern 256)) with
        | () -> Alcotest.fail "send survived"
        | exception Mpi.Aborted { rank = 0; error = Mpi.Timeout _ } -> ()
        | exception _ -> Alcotest.fail "expected Aborted on the sender"
      else
        match Mpi.recv comm ~source:0 ~tag:1 (Mpi.Bytes (Buf.create 256)) with
        | _ -> Alcotest.fail "recv survived"
        | exception Mpi.Aborted { rank = 1; _ } -> ()
        | exception _ -> Alcotest.fail "expected Aborted on the receiver")

let test_errhandler_inherited_by_split () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      Mpi.set_errhandler comm Mpi.Errors_return;
      let sub = Mpi.comm_split comm ~color:0 ~key:0 in
      check_bool "split inherits the parent handler" true
        (Mpi.get_errhandler sub = Mpi.Errors_return);
      check_bool "world default is raise" true
        (Mpi.get_errhandler comm = Mpi.Errors_return))

(* --- iov corruption falls back to the packed path, exactly once --- *)

let test_iov_fallback_once () =
  let obs = Obs.create () in
  let plan =
    Fault.make ~seed:2
      ~link:{ Fault.clean_link with corrupt_p = 0.3 }
      ~rto_ns:5000. ()
  in
  let s = run_faulty ~obs ~plan ~iters:1 (fun () -> custom_path 40000 ()) in
  check_int "fell back to the packed path once" 1 s.Stats.iov_fallbacks;
  let falls =
    List.filter
      (fun (i : Obs.instant) -> i.Obs.i_name = "iov_fallback")
      (Obs.instants obs)
  in
  check_int "one fallback instant in the trace" 1 (List.length falls);
  check_bool "instants carry the fault category" true
    (List.for_all (fun (i : Obs.instant) -> i.Obs.i_cat = "fault") falls);
  check_int "fault.iov_fallback metric" 1
    (Metrics.counter_value
       (Metrics.counter (Obs.metrics obs) "fault.iov_fallback"))

(* --- eager callback failure ships a poison nack (no fault plan) ---

   Before reliable delivery, a pack callback raising mid-eager-send
   completed the sender but left the peer's posted receive pending
   forever.  The poison nack is part of the base protocol. *)

let test_eager_pack_failure_nacks_receiver () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config:Config.default ~stats in
  let w0 = Ucx.create_worker ctx in
  let w1 = Ucx.create_worker ctx in
  let ep01 = Ucx.connect w0 w1 in
  ignore (Ucx.connect w1 w0);
  let failing =
    Ucx.Sd_generic
      {
        sg_packed_size = 256;
        sg_pack = (fun ~offset:_ ~dst:_ -> raise (Ucx.Callback_error 9));
        sg_finish = ignore;
        sg_overhead_ns = 0.;
      }
  in
  let sender_done = ref false and receiver_done = ref false in
  Engine.spawn engine (fun () ->
      let st = Ucx.wait (Ucx.tag_send ep01 ~tag:3L failing) in
      (match st.Ucx.error with
      | Some (Ucx.Callback_failed 9) -> ()
      | _ -> Alcotest.fail "sender: expected Callback_failed");
      sender_done := true);
  Engine.spawn engine (fun () ->
      let st =
        Ucx.wait (Ucx.tag_recv w1 ~tag:3L ~mask:(-1L) (Ucx.Rd_contig (Buf.create 256)))
      in
      (match st.Ucx.error with
      | Some (Ucx.Callback_failed 9) -> ()
      | _ -> Alcotest.fail "receiver: expected the nack's Callback_failed");
      receiver_done := true);
  Engine.run engine;
  check_bool "sender completed" true !sender_done;
  check_bool "receiver completed (no deadlock)" true !receiver_done;
  check_int "nack counted" 1 stats.Stats.nacks

(* --- retransmit backoff jitter (Config.retx_jitter) ---

   Synchronized retry storms: concurrent flows whose fragments drop at
   the same instant all retry after the same deterministic exponential
   backoff, so their retransmits collide again and again.  With
   [retx_jitter] on, each flow draws its sleep from U[rto, min(cap,
   3 x prev)] on a dedicated RNG stream, de-synchronizing the retries
   without perturbing the fault fates (drop/corrupt draws come from a
   different stream, pinned by [test_fixed_seed_replay]). *)

let jitter_retx_times ~jitter ~seed =
  let config = { Config.default with Config.retx_jitter = jitter } in
  let plan =
    Fault.make ~seed
      ~link:{ Fault.clean_link with drop_p = 0.3 }
      ~rto_ns:5000. ~max_retries:8 ()
  in
  let w = Mpi.create_world ~config ~size:2 () in
  Mpi.set_faults w (Some plan);
  let obs = Obs.create () in
  Mpi.set_obs w obs;
  let flows = 8 and len = 512 in
  let src = pattern len in
  let dsts = Array.init flows (fun _ -> Buf.create len) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        List.init flows (fun i ->
            Mpi.isend comm ~dst:1 ~tag:(i + 1) (Mpi.Bytes src))
        |> Mpi.waitall |> ignore
      else
        List.init flows (fun i ->
            Mpi.irecv comm ~source:0 ~tag:(i + 1) (Mpi.Bytes dsts.(i)))
        |> Mpi.waitall |> ignore);
  Array.iteri
    (fun i d ->
      if not (Buf.equal src d) then Alcotest.failf "flow %d: payload damaged" i)
    dsts;
  let times =
    List.filter_map
      (fun i -> if i.Obs.i_name = "retransmit" then Some i.Obs.i_time else None)
      (Obs.instants obs)
  in
  (times, (Mpi.world_stats w).Stats.jittered_backoffs)

(* Retransmits that follow another one within [window_ns]: the size of
   the retry storm's synchronized core.  The FIFO channel serializes
   fragment transmissions, so "simultaneous" retries of concurrent
   flows land one serialization quantum apart, never at the exact same
   instant — clustering, not equality, is the storm signature. *)
let retx_storm ?(window_ns = 500.) times =
  let sorted = List.sort compare times in
  let rec count n = function
    | a :: (b :: _ as rest) ->
        count (if b -. a <= window_ns then n + 1 else n) rest
    | _ -> n
  in
  count 0 sorted

let test_retx_jitter_desync () =
  let off_times, off_jit = jitter_retx_times ~jitter:false ~seed:33 in
  let on_times, on_jit = jitter_retx_times ~jitter:true ~seed:33 in
  check_int "jitter off: no jittered backoffs" 0 off_jit;
  check_bool "jitter on: backoffs were jittered" true (on_jit > 0);
  check_bool "retransmits happened in both runs" true
    (off_times <> [] && on_times <> []);
  let off_c = retx_storm off_times and on_c = retx_storm on_times in
  check_bool "deterministic backoff synchronizes concurrent retries" true
    (off_c >= 3);
  check_bool "jitter de-synchronizes the retry storm" true (on_c < off_c)

let test_retx_jitter_determinism () =
  let a = jitter_retx_times ~jitter:true ~seed:33 in
  check_bool "same seed, same jittered timeline" true
    (a = jitter_retx_times ~jitter:true ~seed:33);
  let b = jitter_retx_times ~jitter:false ~seed:33 in
  check_bool "off path is deterministic too" true
    (b = jitter_retx_times ~jitter:false ~seed:33);
  check_bool "jitter changes the retransmit schedule" true (fst a <> fst b)

let suite =
  let tc = Alcotest.test_case in
  ( "faults",
    [
      tc "plan string roundtrip" `Quick test_plan_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_plan_roundtrip;
      QCheck_alcotest.to_alcotest prop_shrink_stays_in_grammar;
      tc "malformed plans are rejected with context" `Quick
        test_malformed_plans;
      tc "rto backoff" `Quick test_rto_backoff;
      tc "backoff clamp boundary" `Quick test_backoff_clamp_boundary;
      tc "backoff clamp shortens recovery" `Quick test_backoff_clamp_elapsed;
      tc "flap windows" `Quick test_flap_window;
      tc "crash schedule" `Quick test_crash_schedule;
      tc "fate stream determinism" `Quick test_fate_stream_determinism;
      tc "zero overhead when disabled (golden)" `Quick test_zero_overhead_golden;
      tc "matrix: drop" `Quick test_matrix_drop;
      tc "matrix: corrupt" `Quick test_matrix_corrupt;
      tc "matrix: duplicate" `Quick test_matrix_dup;
      tc "matrix: link flap" `Quick test_matrix_flap;
      tc "matrix: delay" `Quick test_matrix_delay;
      tc "fixed seed replays exact recovery" `Quick test_fixed_seed_replay;
      tc "retry exhaustion -> Timeout" `Quick test_retry_exhaustion;
      tc "peer crash -> Peer_failed" `Quick test_peer_crash;
      tc "rendezvous handshake timeout" `Quick test_rndv_handshake_timeout;
      tc "Errors_return stashes the error" `Quick test_errors_return;
      tc "Errors_abort raises Aborted" `Quick test_errors_abort;
      tc "errhandler inherited by comm_split" `Quick test_errhandler_inherited_by_split;
      tc "iov corruption falls back once" `Quick test_iov_fallback_once;
      tc "eager pack failure nacks receiver" `Quick test_eager_pack_failure_nacks_receiver;
      tc "retransmit jitter de-synchronizes retries" `Quick
        test_retx_jitter_desync;
      tc "retransmit jitter is deterministic per seed" `Quick
        test_retx_jitter_determinism;
    ] )
