(* Tests for the checkpoint/restart layer: plan-serialized snapshots
   (byte-identical to the wire pack, fail-closed decoding), the
   in-memory store, logged point-to-point with duplicate suppression
   and replay verification, coordinated epoch commits, and both
   recovery paths (in-world shrink via [run_protected], cross-world
   respawn via [run_job]).  See docs/RESILIENCE.md. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Obs = Mpicd_obs.Obs
module Mpi = Mpicd.Mpi
module Kernel = Mpicd_ddtbench.Kernel
module Registry = Mpicd_ddtbench.Registry
module Snapshot = Mpicd_restart.Snapshot
module Store = Mpicd_restart.Store
module Restart = Mpicd_restart.Restart

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pattern = Dt_gen.pattern

(* Typed-source length covering [count] elements of [t]. *)
let src_len t ~count = max 1 (Dt.ub t + ((count - 1) * Dt.extent t))

let crash_plan ~rank ~at ~hb =
  let s = Printf.sprintf "crash=%d@%g,hb=%g" rank at hb in
  match Fault.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S: %s" s e

(* --- the store --- *)

let test_store_basics () =
  let s = Store.create () in
  check_bool "fresh store is empty" true (Store.files s = 0);
  let b = pattern 16 in
  Store.write s "j/a" b;
  Buf.fill b '\000';
  (* the write copied, so damaging the caller's buffer changes nothing *)
  let r = Option.get (Store.read s "j/a") in
  check_bool "write copies" true (Buf.equal r (pattern 16));
  Buf.fill r '\000';
  check_bool "read copies" true
    (Buf.equal (Option.get (Store.read s "j/a")) (pattern 16));
  Store.write s "j/c" (pattern 4);
  Store.write s "j/b" (pattern 8);
  Store.write s "k/a" (pattern 2);
  check_bool "list is prefix-filtered and sorted" true
    (Store.list s ~prefix:"j/" = [ "j/a"; "j/b"; "j/c" ]);
  check_int "total bytes" 30 (Store.total_bytes s);
  Store.write s "j/a" (pattern 4);
  check_int "overwrite replaces" 18 (Store.total_bytes s);
  Store.delete s "j/b";
  Store.delete s "j/b";
  (* second delete is a no-op *)
  check_bool "deleted" false (Store.mem s "j/b");
  Store.truncate s "j/a" ~len:2;
  check_int "truncated" 2 (Buf.length (Option.get (Store.read s "j/a")));
  Store.corrupt_bit s "j/a" ~pos:0 ~bit:3;
  let expect_u8 = Buf.get_u8 (pattern 2) 0 lxor 8 in
  check_int "bit flipped" expect_u8 (Buf.get_u8 (Option.get (Store.read s "j/a")) 0);
  (match Store.truncate s "gone" ~len:0 with
  | () -> Alcotest.fail "truncate on a missing path must raise"
  | exception Not_found -> ());
  Store.clear s;
  check_int "cleared" 0 (Store.files s)

(* --- type-signature digests --- *)

let test_signature_crc () =
  (* signature-equal layouts built differently digest identically *)
  let a = Dt.contiguous 4 Dt.int32 in
  let b = Dt.vector ~count:4 ~blocklength:1 ~stride:3 Dt.int32 in
  let c = Dt.struct_ ~blocklengths:[| 2; 2 |] ~displacements_bytes:[| 0; 32 |]
      ~types:[| Dt.int32; Dt.int32 |]
  in
  check_bool "contig = vector" true
    (Snapshot.signature_crc a = Snapshot.signature_crc b);
  check_bool "contig = struct" true
    (Snapshot.signature_crc a = Snapshot.signature_crc c);
  check_bool "int32 <> float32" false
    (Snapshot.signature_crc a = Snapshot.signature_crc (Dt.contiguous 4 Dt.float32));
  check_bool "4 <> 5 elements" false
    (Snapshot.signature_crc a = Snapshot.signature_crc (Dt.contiguous 5 Dt.int32))

(* --- snapshot round-trip (qcheck over random datatype trees) ---

   The checkpoint payload must be byte-for-byte what a wire transfer of
   the same (datatype, count) would carry, and decoding must restore
   every typed byte. *)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:200 ~name:"restore (checkpoint buf) = buf"
    QCheck.(pair Dt_gen.arb (int_range 1 3))
    (fun (dt, count) ->
      let len = src_len dt ~count in
      let src = pattern len in
      let img =
        Snapshot.encode ~epoch:3 ~rank:1 ~cid:7 ~dt ~count ~src ()
      in
      (* payload = wire pack bytes *)
      let wire = Buf.create (Dt.packed_size dt ~count) in
      ignore (Dt.pack dt ~count ~src ~dst:wire : int);
      let payload =
        Buf.sub img ~pos:Snapshot.header_size
          ~len:(Buf.length img - Snapshot.header_size)
      in
      if not (Buf.equal payload wire) then
        QCheck.Test.fail_report "payload differs from wire pack";
      (* decode restores every typed byte *)
      let dst = Buf.create len in
      (match Snapshot.decode ~dt ~count ~dst img with
      | Error e ->
          QCheck.Test.fail_report
            ("decode failed: " ^ Snapshot.error_to_string e)
      | Ok m ->
          if m.Snapshot.epoch <> 3 || m.Snapshot.rank <> 1 || m.Snapshot.cid <> 7
             || m.Snapshot.count <> count
          then QCheck.Test.fail_report "meta fields damaged");
      let repacked = Buf.create (Dt.packed_size dt ~count) in
      ignore (Dt.pack dt ~count ~src:dst ~dst:repacked : int);
      Buf.equal repacked wire)

let test_snapshot_ddtbench () =
  List.iter
    (fun (kernel : Kernel.kernel) ->
      let (module K : Kernel.KERNEL) = kernel in
      let slab = K.create () in
      let img =
        Snapshot.encode ~epoch:0 ~rank:0 ~cid:0 ~dt:K.derived ~count:1
          ~src:slab ()
      in
      let sink = K.create_sink () in
      ignore (Snapshot.decode_exn ~dt:K.derived ~count:1 ~dst:sink img
        : Snapshot.meta);
      check_bool (K.name ^ " restores exchange-covered bytes") true
        (K.equal slab sink))
    Registry.all

(* --- fail-closed decoding --- *)

let test_fail_closed () =
  let dt =
    Dt.struct_ ~blocklengths:[| 3; 1 |] ~displacements_bytes:[| 0; 16 |]
      ~types:[| Dt.int32; Dt.float64 |]
  in
  let count = 2 in
  let src = pattern (src_len dt ~count) in
  let img = Snapshot.encode ~epoch:1 ~rank:0 ~cid:9 ~dt ~count ~src () in
  let copy () = Buf.copy img in
  let expect name b ~dt ~count err =
    let dst = Buf.create (src_len dt ~count) in
    Buf.fill dst '\xAA';
    (match Snapshot.decode ~dt ~count ~dst b with
    | Ok _ -> Alcotest.failf "%s: decode accepted a damaged snapshot" name
    | Error e ->
        if e <> err then
          Alcotest.failf "%s: expected %s, got %s" name
            (Snapshot.error_to_string err)
            (Snapshot.error_to_string e));
    (* fail-closed: the destination must be untouched *)
    for i = 0 to Buf.length dst - 1 do
      if Buf.get_u8 dst i <> 0xAA then
        Alcotest.failf "%s: destination scribbled at byte %d" name i
    done
  in
  let payload_len = Buf.length img - Snapshot.header_size in
  expect "too short" (Buf.sub img ~pos:0 ~len:32) ~dt ~count
    (Snapshot.Too_short { need = Snapshot.header_size; got = 32 });
  let b = copy () in
  Buf.set_u8 b 0 (Buf.get_u8 b 0 lxor 0xFF);
  (match Snapshot.decode ~dt ~count ~dst:(Buf.create 64) b with
  | Error (Snapshot.Bad_magic _) -> ()
  | _ -> Alcotest.fail "magic damage undetected");
  let b = copy () in
  Buf.set_i32 b 4 2l;
  expect "version" b ~dt ~count (Snapshot.Bad_version 2);
  let b = copy () in
  Buf.set_u8 b 9 (Buf.get_u8 b 9 lxor 1);
  expect "header field damage" b ~dt ~count Snapshot.Header_crc_mismatch;
  expect "truncated payload"
    (Buf.sub img ~pos:0 ~len:(Buf.length img - 1))
    ~dt ~count
    (Snapshot.Truncated_payload { expected = payload_len; got = payload_len - 1 });
  let b = copy () in
  Buf.set_u8 b (Snapshot.header_size + 2)
    (Buf.get_u8 b (Snapshot.header_size + 2) lxor 4);
  expect "payload bit rot" b ~dt ~count Snapshot.Payload_crc_mismatch;
  let other = Dt.contiguous 5 Dt.float32 in
  expect "wrong datatype" (copy ()) ~dt:other ~count
    (Snapshot.Signature_mismatch
       { stored = Snapshot.signature_crc dt;
         expected = Snapshot.signature_crc other });
  expect "wrong count" (copy ()) ~dt ~count:(count + 1)
    (Snapshot.Count_mismatch { stored = count; expected = count + 1 });
  (* a CRC-consistent header that lies about the payload length *)
  let module Crc32 = Mpicd_ucx.Crc32 in
  let b = copy () in
  let lie = payload_len - 8 in
  Buf.set_i64 b 48 (Int64.of_int lie);
  Buf.set_i32 b 56 (Crc32.digest_sub b ~pos:Snapshot.header_size ~len:lie);
  Buf.set_i32 b 60 (Crc32.digest_sub b ~pos:0 ~len:60);
  expect "lying header" b ~dt ~count
    (Snapshot.Truncated_payload { expected = payload_len; got = lie })

(* --- logged point-to-point: duplicate suppression --- *)

let test_dup_suppression () =
  let w = Mpi.create_world ~size:2 () in
  let store = Store.create () in
  let n = 32 in
  let a = pattern n in
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i (255 - Buf.get_u8 a i)
  done;
  let got_a = Buf.create n and got_b = Buf.create n in
  Mpi.run w (fun c ->
      let rt = Restart.create ~store ~job:"dup" c in
      if Mpi.rank c = 0 then begin
        Restart.send rt ~dst:1 ~tag:5 (Mpi.Bytes a);
        (* forge a stale duplicate of seq 0: recovery re-deliveries look
           exactly like this on the wire *)
        let env = Buf.create (24 + n) in
        Buf.set_i64 env 0 1L;
        (* a later incarnation: suppression keys on seq, not life *)
        Buf.set_i64 env 8 0L;
        Buf.set_i64 env 16 0L;
        Buf.blit ~src:a ~src_pos:0 ~dst:env ~dst_pos:24 ~len:n;
        Mpi.Internal.send_k c Restart ~dst:1 ~tag:5 (Mpi.Bytes env);
        Restart.send rt ~dst:1 ~tag:5 (Mpi.Bytes b)
      end
      else begin
        let s = Restart.recv rt ~source:0 ~tag:5 (Mpi.Bytes got_a) in
        check_int "payload length unwrapped" n s.Mpi.len;
        ignore (Restart.recv rt ~source:0 ~tag:5 (Mpi.Bytes got_b))
      end);
  check_bool "first payload" true (Buf.equal a got_a);
  check_bool "second payload (duplicate skipped)" true (Buf.equal b got_b);
  let s = Mpi.world_stats w in
  check_int "one duplicate suppressed" 1 s.Stats.dups_suppressed;
  check_int "both sends logged" 2 s.Stats.msgs_logged;
  check_int "nothing replayed" 0 s.Stats.msgs_replayed

(* --- epoch commits, restore, pruning --- *)

let test_commit_restore () =
  let w = Mpi.create_world ~size:2 () in
  let store = Store.create () in
  let dt = Dt.contiguous 4 Dt.float64 in
  Mpi.run w (fun c ->
      let me = Mpi.rank c in
      let rt = Restart.create ~store ~job:"cr" c in
      let x = Buf.create 32 in
      for i = 0 to 3 do
        Buf.set_f64 x (8 * i) (float_of_int ((10 * me) + i))
      done;
      Restart.register rt ~name:"x" ~dt ~count:1 x;
      check_bool "registered (hidden cursors excluded)" true
        (List.map fst (Restart.registered rt) = [ "x" ]);
      check_int "epoch starts at -1" (-1) (Restart.epoch rt);
      Restart.commit rt;
      check_int "epoch 0 committed" 0 (Restart.epoch rt);
      (* interval 1: exchange, then mutate *)
      let peer = 1 - me in
      Restart.send rt ~dst:peer ~tag:1 (Mpi.Bytes (pattern 8));
      ignore (Restart.recv rt ~source:peer ~tag:1 (Mpi.Bytes (Buf.create 8)));
      Buf.set_f64 x 0 999.;
      Restart.commit rt;
      check_int "epoch 1 committed" 1 (Restart.epoch rt);
      (* scribble, then rewind to epoch 0 *)
      Buf.fill x '\000';
      Restart.restore_to rt ~epoch:0;
      check_int "epoch rewound" 0 (Restart.epoch rt);
      for i = 0 to 3 do
        check_bool
          (Printf.sprintf "value %d restored" i)
          true
          (Buf.get_f64 x (8 * i) = float_of_int ((10 * me) + i))
      done;
      (* log pruning: epoch-1 entries are disposable once epoch 1 is
         globally complete *)
      check_int "one log entry" 1
        (List.length
           (Store.list store ~prefix:(Printf.sprintf "cr/log/r%03d/" me)));
      Restart.prune_log rt ~upto:1;
      check_int "log pruned" 0
        (List.length
           (Store.list store ~prefix:(Printf.sprintf "cr/log/r%03d/" me))));
  check_int "both epochs globally complete" 1
    (Restart.latest_complete_epoch store ~job:"cr" ~nranks:2);
  check_int "no epoch complete for a bigger group" (-1)
    (Restart.latest_complete_epoch store ~job:"cr" ~nranks:3);
  let s = Mpi.world_stats w in
  (* 2 ranks x 2 epochs x 2 registered buffers (x + hidden cursors) *)
  check_int "checkpoints taken" 8 s.Stats.checkpoints_taken;
  check_int "restores" 4 s.Stats.buffers_restored;
  check_bool "checkpoint bytes counted" true (s.Stats.checkpoint_bytes > 0)

(* --- damaged snapshots fail closed through restore_to --- *)

let test_restore_fail_closed () =
  let w = Mpi.create_world ~size:1 () in
  let store = Store.create () in
  Mpi.run w (fun c ->
      let rt = Restart.create ~store ~job:"fc" c in
      let x = pattern 64 in
      Restart.register rt ~name:"x" ~dt:(Dt.contiguous 16 Dt.int32) ~count:1 x;
      Restart.commit rt;
      let path = "fc/ckpt/e0000/r000/x" in
      check_bool "snapshot stored where documented" true (Store.mem store path);
      let expect name damage err_ok =
        let img = Option.get (Store.read store path) in
        damage ();
        (match Restart.restore_to rt ~epoch:0 with
        | () -> Alcotest.failf "%s: restore accepted damage" name
        | exception Snapshot.Corrupt_snapshot e ->
            if not (err_ok e) then
              Alcotest.failf "%s: unexpected error %s" name
                (Snapshot.error_to_string e));
        Store.write store path img
      in
      expect "bit rot"
        (fun () -> Store.corrupt_bit store path ~pos:70 ~bit:0)
        (function Snapshot.Payload_crc_mismatch -> true | _ -> false);
      expect "torn write"
        (fun () -> Store.truncate store path ~len:40)
        (function Snapshot.Too_short _ -> true | _ -> false);
      expect "missing image"
        (fun () -> Store.delete store path)
        (function Snapshot.Too_short { got = 0; _ } -> true | _ -> false);
      (* undamaged: restores fine *)
      Restart.restore_to rt ~epoch:0)

(* --- replay divergence is loud --- *)

let test_replay_divergence () =
  let store = Store.create () in
  let run_life payload expect_diverge =
    let w = Mpi.create_world ~size:2 () in
    let diverged = ref false in
    Mpi.run w (fun c ->
        let rt = Restart.create ~store ~job:"div" c in
        if Mpi.rank c = 0 then
          try Restart.send rt ~dst:1 ~tag:2 (Mpi.Bytes payload)
          with Restart.Replay_diverged _ -> diverged := true
        else if not expect_diverge then
          ignore (Restart.recv rt ~source:0 ~tag:2 (Mpi.Bytes (Buf.create 16))));
    !diverged
  in
  check_bool "first life logs" false (run_life (pattern 16) false);
  (* a deterministic replay matches the log... *)
  check_bool "identical replay verifies" false (run_life (pattern 16) false);
  check_int "replay verified against the log" 1
    (let s = Store.list store ~prefix:"div/log/" in
     List.length s);
  (* ...a different payload at the same sequence number is divergence *)
  check_bool "diverging replay detected" true
    (run_life (Buf.create 16) true)

(* --- in-world recovery: crash, shrink, restore, finish --- *)

(* Each rank carries a counter advanced deterministically per epoch and
   exchanged around the current ring; receivers verify the incoming
   value against the sender's closed form, so a wrong restore surfaces
   as a value mismatch rather than a hang. *)
let counter_app ~epochs ~accs =
  let expected wr e =
    (* sum_{k=1..e} k * (wr+1) *)
    float_of_int (e * (e + 1) / 2 * (wr + 1))
  in
  {
    Restart.epochs;
    init =
      (fun rt ->
        let me = Mpi.world_rank_of (Restart.comm rt) (Mpi.rank (Restart.comm rt)) in
        let acc = accs.(me) in
        Buf.set_f64 acc 0 0.;
        Restart.register rt ~name:"acc" ~dt:Dt.float64 ~count:1 acc);
    step =
      (fun rt ~epoch ->
        let c = Restart.comm rt in
        let me = Mpi.rank c and n = Mpi.size c in
        let wme = Mpi.world_rank_of c me in
        let acc = accs.(wme) in
        Buf.set_f64 acc 0
          (Buf.get_f64 acc 0 +. float_of_int (epoch * (wme + 1)));
        if n > 1 then begin
          let right = (me + 1) mod n and left = (me - 1 + n) mod n in
          Restart.send rt ~dst:right ~tag:3 (Mpi.Bytes acc);
          let inb = Buf.create 8 in
          ignore (Restart.recv rt ~source:left ~tag:3 (Mpi.Bytes inb));
          let wleft = Mpi.world_rank_of c left in
          if Buf.get_f64 inb 0 <> expected wleft epoch then
            Alcotest.failf
              "epoch %d: rank %d sent %g, expected %g (stale restore?)" epoch
              wleft (Buf.get_f64 inb 0) (expected wleft epoch)
        end);
  }

let test_run_protected_shrink () =
  let size = 3 and epochs = 6 in
  let w = Mpi.create_world ~size () in
  Mpi.set_faults w (Some (crash_plan ~rank:2 ~at:40_000. ~hb:20_000.));
  let store = Store.create () in
  let accs = Array.init size (fun _ -> Buf.create 8) in
  let finished = Array.make size false in
  Mpi.run w (fun c ->
      let rt = Restart.create ~store ~job:"shrink" c in
      try
        Restart.run_protected rt (counter_app ~epochs ~accs);
        finished.(Mpi.world_rank_of c (Mpi.rank c)) <- true
      with Mpi.Mpi_error _ | Mpi.Aborted _ -> ());
  check_bool "rank 0 finished" true finished.(0);
  check_bool "rank 1 finished" true finished.(1);
  check_bool "crashed rank did not finish" false finished.(2);
  (* survivors carried the full computation *)
  for r = 0 to 1 do
    let v = Buf.get_f64 accs.(r) 0 in
    let want = float_of_int (epochs * (epochs + 1) / 2 * (r + 1)) in
    check_bool (Printf.sprintf "rank %d final counter" r) true (v = want)
  done;
  let s = Mpi.world_stats w in
  check_bool "recovery ran on each survivor" true (s.Stats.recoveries >= 2);
  check_bool "buffers restored during recovery" true
    (s.Stats.buffers_restored > 0)

(* --- cross-world respawn: byte-identical convergence --- *)

(* Communication-dependent state: each rank's accumulator folds in the
   neighbour's value every epoch, so a restore from a wrong epoch (or a
   non-deterministic replay) changes the final bytes. *)
let mesh_app ~size ~epochs ~finals =
  let dt = Dt.vector ~count:4 ~blocklength:1 ~stride:2 Dt.float64 in
  ignore size;
  {
    Restart.epochs;
    init =
      (fun rt ->
        let c = Restart.comm rt in
        let me = Mpi.rank c in
        let grid = Buf.create (src_len dt ~count:1) in
        for i = 0 to 3 do
          Buf.set_f64 grid (16 * i) (float_of_int ((100 * me) + i))
        done;
        Restart.register rt ~name:"grid" ~dt ~count:1 grid);
    step =
      (fun rt ~epoch ->
        let c = Restart.comm rt in
        let me = Mpi.rank c and n = Mpi.size c in
        let grid = List.assoc "grid" (Restart.registered rt) in
        let right = (me + 1) mod n and left = (me - 1 + n) mod n in
        Restart.send rt ~dst:right ~tag:4
          (Mpi.Typed { dt; count = 1; base = grid });
        let inb = Buf.create (src_len dt ~count:1) in
        ignore
          (Restart.recv rt ~source:left ~tag:4
             (Mpi.Typed { dt; count = 1; base = inb }));
        for i = 0 to 3 do
          Buf.set_f64 grid (16 * i)
            ((Buf.get_f64 grid (16 * i) *. 0.75)
            +. (Buf.get_f64 inb (16 * i) *. 0.25)
            +. float_of_int (epoch * (i + 1)));
          if epoch = epochs then
            Buf.set_f64 finals.(me) (8 * i) (Buf.get_f64 grid (16 * i))
        done);
  }

let epoch_complete_times obs =
  List.filter_map
    (fun (i : Obs.instant) ->
      if i.Obs.i_name = "epoch_complete" then
        match List.assoc_opt "epoch" i.Obs.i_args with
        | Some (Obs.Int e) -> Some (e, i.Obs.i_time)
        | _ -> None
      else None)
    (Obs.instants obs)

let test_run_job_respawn_byte_identical () =
  let size = 3 and epochs = 4 in
  (* golden fault-free run, instrumented to learn the epoch timeline *)
  let golden = Array.init size (fun _ -> Buf.create 32) in
  let store_g = Store.create () in
  let obs = Obs.create () in
  let report =
    Restart.run_job ~obs ~store:store_g ~job:"mesh" ~size
      (mesh_app ~size ~epochs ~finals:golden)
  in
  check_bool "fault-free job completes" true report.Restart.completed;
  check_int "fault-free job uses one world" 1 report.Restart.worlds_used;
  check_bool "fault-free job starts fresh" true
    (report.Restart.start_epochs = [ -1 ]);
  let times = epoch_complete_times obs in
  let t_of e =
    List.filter_map (fun (e', t) -> if e' = e then Some t else None) times
  in
  let crash_at =
    (List.fold_left Float.max neg_infinity (t_of 2)
    +. List.fold_left Float.min infinity (t_of 3))
    /. 2.
  in
  check_bool "epoch timeline observed" true (crash_at > 0.);
  (* crash a rank between the epoch-2 and epoch-3 cuts, every world *)
  let crashed = Array.init size (fun _ -> Buf.create 32) in
  let store_c = Store.create () in
  let report =
    Restart.run_job
      ~plan:(crash_plan ~rank:1 ~at:crash_at ~hb:20_000.)
      ~store:store_c ~job:"mesh" ~size
      (mesh_app ~size ~epochs ~finals:crashed)
  in
  check_bool "crashed job completes" true report.Restart.completed;
  check_bool "a replacement world was spawned" true
    (report.Restart.worlds_used >= 2);
  (match report.Restart.start_epochs with
  | -1 :: rest ->
      List.iter
        (fun e ->
          check_bool "replacement restores a globally-complete epoch" true
            (e >= 0 && e <= epochs))
        rest
  | l ->
      Alcotest.failf "unexpected start epochs (%d entries)" (List.length l));
  (* crash-and-recover converges byte-identically to the fault-free run:
     application state... *)
  for r = 0 to size - 1 do
    check_bool
      (Printf.sprintf "rank %d final state byte-identical" r)
      true
      (Buf.equal golden.(r) crashed.(r))
  done;
  (* ...and the final checkpoint images themselves *)
  List.iter
    (fun path ->
      let a = Option.get (Store.read store_g path) in
      match Store.read store_c path with
      | Some b ->
          check_bool (path ^ " byte-identical across runs") true (Buf.equal a b)
      | None -> Alcotest.failf "%s missing from the recovered run" path)
    (Store.list store_g
       ~prefix:(Printf.sprintf "mesh/ckpt/e%04d/" epochs))

let test_run_job_rejects_heartbeatless_crash_plan () =
  match
    Restart.run_job
      ~plan:(Fault.make ~crashes:[ (0, 1000.) ] ~hb_period_ns:0. ())
      ~store:(Store.create ()) ~job:"bad" ~size:2
      (counter_app ~epochs:1 ~accs:(Array.init 2 (fun _ -> Buf.create 8)))
  with
  | _ -> Alcotest.fail "crash plan without heartbeats must be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  let tc = Alcotest.test_case in
  ( "restart",
    [
      tc "store basics" `Quick test_store_basics;
      tc "type-signature digest" `Quick test_signature_crc;
      QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
      tc "snapshots of every DDTBench kernel" `Quick test_snapshot_ddtbench;
      tc "damaged snapshots fail closed" `Quick test_fail_closed;
      tc "duplicate envelopes suppressed" `Quick test_dup_suppression;
      tc "commit / restore / prune" `Quick test_commit_restore;
      tc "restore_to fails closed on store damage" `Quick
        test_restore_fail_closed;
      tc "replay divergence detected" `Quick test_replay_divergence;
      tc "in-world shrink recovery" `Quick test_run_protected_shrink;
      tc "respawn converges byte-identical" `Quick
        test_run_job_respawn_byte_identical;
      tc "crash plan without heartbeats rejected" `Quick
        test_run_job_rejects_heartbeatless_crash_plan;
    ] )
