(* Tests for the guideline-driven datatype normalizer: every rewrite
   rule fires on its seed shape, and the guideline properties hold over
   random trees and every DDTBench kernel — normalization is
   idempotent, preserves the type map and bounds, packs byte-identical
   streams, and never loses under the cost model. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Normalize = Mpicd_datatype.Normalize
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel
module Config = Mpicd_simnet.Config
module Mpi = Mpicd.Mpi

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rules r =
  List.map (fun s -> Normalize.rule_id s.Normalize.rule) r.Normalize.steps

let has_rule id r =
  if not (List.mem id (rules r)) then
    Alcotest.failf "expected rule %s, got [%s]" id (String.concat "; " (rules r))

(* Full guideline obligation for one type: equivalence, byte identity,
   idempotence, cost monotonicity. *)
let obligations what t =
  let r = Normalize.run t in
  let n = r.Normalize.normalized in
  check_bool (what ^ ": typemap+bounds preserved") true (Normalize.equivalent t n);
  check_bool (what ^ ": signature preserved") true (Dt.equal_signature t n);
  (match Normalize.verify_bytes t n with
  | Ok () -> ()
  | Error why -> Alcotest.failf "%s: packed bytes differ: %s" what why);
  check_bool (what ^ ": idempotent") true (Dt.equal n (Normalize.normalize n));
  check_bool
    (what ^ ": never loses under cost model")
    true
    (r.Normalize.normalized_cost.Normalize.total_ns
    <= r.Normalize.original_cost.Normalize.total_ns);
  r

(* --- individual rules fire on their seed shapes --- *)

let test_hvector_collapse () =
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let r = obligations "hvector collapse" t in
  has_rule "hvector-collapse" r;
  check_bool "result is contiguous" true
    (Dt.equal r.Normalize.normalized (Dt.contiguous 12 Dt.float64))

let test_contig_flatten () =
  let t = Dt.contiguous 2 (Dt.contiguous 3 (Dt.contiguous 1 Dt.int32)) in
  let r = obligations "contiguous flatten" t in
  has_rule "contig-flatten" r;
  check_bool "fully flattened" true
    (Dt.equal r.Normalize.normalized (Dt.contiguous 6 Dt.int32))

let test_hindexed_to_hvector () =
  let t =
    Dt.hindexed ~blocklengths:[| 2; 2; 2; 2 |]
      ~displacements_bytes:[| 0; 48; 96; 144 |]
      Dt.float64
  in
  let r = obligations "uniform hindexed" t in
  has_rule "hindexed-vector" r;
  check_bool "became an hvector" true
    (Dt.equal r.Normalize.normalized
       (Dt.hvector ~count:4 ~blocklength:2 ~stride_bytes:48 Dt.float64))

let test_hindexed_to_hvector_offset () =
  (* nonzero first displacement: the hvector keeps the offset via a
     one-block hindexed wrapper (typemap-preserving, still cheaper) *)
  let t =
    Dt.hindexed ~blocklengths:[| 1; 1; 1; 1; 1 |]
      ~displacements_bytes:[| 8; 24; 40; 56; 72 |]
      Dt.int32
  in
  let r = obligations "offset uniform hindexed" t in
  has_rule "hindexed-vector" r;
  check_bool "wrapped hvector" true
    (Dt.equal r.Normalize.normalized
       (Dt.hindexed ~blocklengths:[| 1 |] ~displacements_bytes:[| 8 |]
          (Dt.hvector ~count:5 ~blocklength:1 ~stride_bytes:16 Dt.int32)))

let test_struct_homogeneous () =
  let t =
    Dt.struct_ ~blocklengths:[| 1; 1; 1 |]
      ~displacements_bytes:[| 0; 16; 32 |]
      ~types:[| Dt.float64; Dt.float64; Dt.float64 |]
  in
  let r = obligations "homogeneous struct" t in
  has_rule "struct-homogeneous" r;
  (* and the resulting uniform hindexed keeps rewriting to an hvector *)
  has_rule "hindexed-vector" r

let test_coalesce_chain () =
  (* zero block dropped, adjacent blocks merged, the single block at 0
     lowered to contiguous *)
  let t =
    Dt.hindexed ~blocklengths:[| 2; 0; 2 |]
      ~displacements_bytes:[| 0; 5; 8 |]
      Dt.int32
  in
  let r = obligations "drop-zero + coalesce" t in
  has_rule "hindexed-drop-zero" r;
  has_rule "hindexed-coalesce" r;
  has_rule "hindexed-contig" r;
  check_bool "fully contiguous" true
    (Dt.equal r.Normalize.normalized (Dt.contiguous 4 Dt.int32))

let test_resized_noop () =
  let t = Dt.resized ~lb:0 ~extent:16 (Dt.contiguous 4 Dt.int32) in
  let r = obligations "resized noop" t in
  has_rule "resized-noop" r;
  check_bool "wrapper removed" true
    (Dt.equal r.Normalize.normalized (Dt.contiguous 4 Dt.int32))

let test_resized_nested () =
  let inner = Dt.resized ~lb:0 ~extent:32 (Dt.contiguous 2 Dt.int32) in
  let t = Dt.resized ~lb:0 ~extent:48 inner in
  let r = obligations "nested resized" t in
  has_rule "resized-nested" r;
  check_bool "outer bounds win" true
    (Dt.equal r.Normalize.normalized
       (Dt.resized ~lb:0 ~extent:48 (Dt.contiguous 2 Dt.int32)))

let test_irreducible_unchanged () =
  (* a genuinely gapped strided column and a heterogeneous struct:
     nothing to rewrite, and the normalizer must say so *)
  let col = Dt.vector ~count:8 ~blocklength:1 ~stride:10 Dt.float64 in
  let str =
    Dt.struct_ ~blocklengths:[| 3; 1 |] ~displacements_bytes:[| 0; 16 |]
      ~types:[| Dt.int32; Dt.float64 |]
  in
  List.iter
    (fun (what, t) ->
      let r = obligations what t in
      check_bool (what ^ ": unchanged") false (Normalize.changed r);
      check_int (what ^ ": no steps") 0 (List.length r.Normalize.steps);
      check_bool (what ^ ": same value") true (r.Normalize.normalized == t))
    [ ("strided column", col); ("heterogeneous struct", str) ]

(* --- trace and cost bookkeeping --- *)

let test_trace_and_json () =
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let r = Normalize.run t in
  check_bool "changed" true (Normalize.changed r);
  List.iter
    (fun (s : Normalize.step) ->
      check_bool "per-step commit saving >= 0" true (s.Normalize.cost_delta_ns >= 0.);
      check_bool "before rendered" true (String.length s.Normalize.before > 0);
      check_bool "after rendered" true (String.length s.Normalize.after > 0))
    r.Normalize.steps;
  let json = Normalize.json_of_result r in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k -> check_bool ("json has " ^ k) true (contains k))
    [
      {|"rule":"hvector-collapse"|};
      {|"path"|};
      {|"before"|};
      {|"after"|};
      {|"cost_delta_ns"|};
      {|"original_cost"|};
      {|"normalized_cost"|};
    ]

let test_cost_components () =
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let c = Normalize.cost t in
  check_int "hvector nodes" 2 c.Normalize.nodes;
  check_bool "commit cost positive" true (c.Normalize.commit_ns > 0.);
  check_bool "total = commit + pack" true
    (c.Normalize.total_ns = c.Normalize.commit_ns +. c.Normalize.pack_ns);
  let n = Normalize.cost (Normalize.normalize t) in
  (* same typemap -> same merged blocks and pack cost; only commit drops *)
  check_int "same blocks" c.Normalize.blocks n.Normalize.blocks;
  check_bool "same pack cost" true (c.Normalize.pack_ns = n.Normalize.pack_ns);
  check_bool "smaller commit cost" true
    (n.Normalize.commit_ns < c.Normalize.commit_ns)

(* --- commit-time memo --- *)

let test_memo_get () =
  Normalize.clear_cache ();
  let t = Dt.hvector ~count:4 ~blocklength:3 ~stride_bytes:24 Dt.float64 in
  let n1 = Normalize.get t in
  let n2 = Normalize.get t in
  check_bool "memo hit returns same value" true (n1 == n2);
  check_bool "memo result is the normalized form" true
    (Dt.equal n1 (Normalize.normalize t));
  (* an already-normal type comes back physically unchanged *)
  let c = Dt.contiguous 4 Dt.int32 in
  check_bool "normal form is identity" true (Normalize.get c == c)

(* --- commit-time application behind the config flag --- *)

let test_auto_normalize_flag () =
  (* a denormalized type sent through the full MPI stack with
     auto_normalize on and off: the receiver must observe identical
     bytes either way (the rewrite preserves the type map), and the
     flag must route plan compilation through the normalizer *)
  let dt =
    Dt.hindexed ~blocklengths:(Array.make 16 1)
      ~displacements_bytes:(Array.init 16 (fun i -> i * 8))
      Dt.float64
  in
  let count = 2 in
  let n = Dt.ub dt + ((count - 1) * Dt.extent dt) in
  let send_recv config =
    let w = Mpi.create_world ~config ~size:2 () in
    let recv = Buf.create n in
    Mpi.run w (fun comm ->
        if Mpi.rank comm = 0 then begin
          let src = Dt_gen.pattern n in
          Mpi.send comm ~dst:1 ~tag:0 (Mpi.Typed { dt; count; base = src })
        end
        else
          ignore
            (Mpi.recv comm ~source:0 ~tag:0
               (Mpi.Typed { dt; count; base = recv })));
    recv
  in
  Normalize.clear_cache ();
  let off = send_recv Config.default in
  let on = send_recv { Config.default with Config.auto_normalize = true } in
  check_bool "received bytes identical with flag on" true (Buf.equal off on);
  (* the typed blocks really arrived (not all-zero) *)
  check_bool "payload nonempty" true
    (Buf.length on > 0 && Dt.size dt > 0
    && List.exists
         (fun (d, l) ->
           let any = ref false in
           for i = d to d + l - 1 do
             if Buf.get_u8 on i <> 0 then any := true
           done;
           !any)
         (Dt.block_list dt ~count))

(* --- properties: random trees --- *)

let prop_guidelines_random =
  QCheck.Test.make
    ~name:
      "normalize: idempotent, typemap/bounds-preserving, byte-identical, \
       never loses (random trees)"
    ~count:300 Dt_gen.arb
    (fun t ->
      let r = Normalize.run t in
      let n = r.Normalize.normalized in
      Normalize.equivalent t n
      && Dt.equal_signature t n
      && Normalize.verify_bytes t n = Ok ()
      && Dt.equal n (Normalize.normalize n)
      && r.Normalize.normalized_cost.Normalize.total_ns
         <= r.Normalize.original_cost.Normalize.total_ns)

let prop_steps_account_for_saving =
  QCheck.Test.make
    ~name:"normalize: per-step deltas sum to the commit-cost saving" ~count:300
    Dt_gen.arb
    (fun t ->
      let r = Normalize.run t in
      let stepped =
        List.fold_left
          (fun a (s : Normalize.step) -> a +. s.Normalize.cost_delta_ns)
          0. r.Normalize.steps
      in
      let saving =
        r.Normalize.original_cost.Normalize.commit_ns
        -. r.Normalize.normalized_cost.Normalize.commit_ns
      in
      abs_float (stepped -. saving) < 1e-6)

(* --- the DDTBench guideline sweep --- *)

let test_ddtbench_sweep () =
  List.iter
    (fun k ->
      let module K = (val k : Kernel.KERNEL) in
      ignore (obligations ("ddtbench/" ^ K.name) K.derived))
    Registry.all

let suite =
  let tc = Alcotest.test_case in
  ( "normalize",
    [
      tc "hvector collapses to contiguous" `Quick test_hvector_collapse;
      tc "nested contiguous flattens" `Quick test_contig_flatten;
      tc "uniform hindexed becomes hvector" `Quick test_hindexed_to_hvector;
      tc "offset uniform hindexed wraps hvector" `Quick
        test_hindexed_to_hvector_offset;
      tc "homogeneous struct lowers and chains" `Quick test_struct_homogeneous;
      tc "drop-zero + coalesce + contig chain" `Quick test_coalesce_chain;
      tc "resized noop unwraps" `Quick test_resized_noop;
      tc "nested resized collapses" `Quick test_resized_nested;
      tc "irreducible types unchanged" `Quick test_irreducible_unchanged;
      tc "rewrite trace and json" `Quick test_trace_and_json;
      tc "cost model components" `Quick test_cost_components;
      tc "commit-time memo" `Quick test_memo_get;
      tc "auto_normalize flag end-to-end" `Quick test_auto_normalize_flag;
      tc "ddtbench kernels satisfy the guidelines" `Slow test_ddtbench_sweep;
      QCheck_alcotest.to_alcotest prop_guidelines_random;
      QCheck_alcotest.to_alcotest prop_steps_account_for_saving;
    ] )
