(* Tests for the UCP-like simulated transport. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Ucx = Mpicd_ucx.Ucx

let check_int = Alcotest.(check int)

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 31 + 7) land 0xff)
  done;
  b

(* Build a fresh 2-worker world and run [f w0 w1 ep01 ep10] inside it. *)
let with_pair ?(config = Config.default) f =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config ~stats in
  let w0 = Ucx.create_worker ctx in
  let w1 = Ucx.create_worker ctx in
  let ep01 = Ucx.connect w0 w1 in
  let ep10 = Ucx.connect w1 w0 in
  f ~engine ~stats ~w0 ~w1 ~ep01 ~ep10;
  Engine.run engine

let expect_ok (st : Ucx.status) =
  match st.error with
  | None -> ()
  | Some (Ucx.Truncated _) -> Alcotest.fail "unexpected truncation"
  | Some (Ucx.Callback_failed c) -> Alcotest.failf "callback failed: %d" c
  | Some (Ucx.Timeout { retries }) ->
      Alcotest.failf "unexpected timeout after %d retries" retries
  | Some (Ucx.Peer_failed { peer }) -> Alcotest.failf "peer %d failed" peer
  | Some Ucx.Data_corrupted -> Alcotest.fail "data corrupted"
  | Some Ucx.Revoked -> Alcotest.fail "unexpected revocation"

let test_contig_eager_roundtrip () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 1024 in
      let dst = Buf.create 1024 in
      Engine.spawn engine ~name:"sender" (fun () ->
          let req = Ucx.tag_send ep01 ~tag:7L (Ucx.Sd_contig src) in
          expect_ok (Ucx.wait req));
      Engine.spawn engine ~name:"receiver" (fun () ->
          let req = Ucx.tag_recv w1 ~tag:7L ~mask:(-1L) (Ucx.Rd_contig dst) in
          let st = Ucx.wait req in
          expect_ok st;
          check_int "len" 1024 st.len;
          Alcotest.(check bool) "payload" true (Buf.equal src dst)))

let test_contig_rndv_roundtrip () =
  with_pair (fun ~engine ~stats ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let n = 256 * 1024 in
      let src = pattern n in
      let dst = Buf.create n in
      Engine.spawn engine (fun () ->
          let req = Ucx.tag_send ep01 ~tag:1L (Ucx.Sd_contig src) in
          expect_ok (Ucx.wait req);
          (* sender completion implies transfer done *)
          Alcotest.(check bool) "rndv used" true (stats.rndv_messages >= 1));
      Engine.spawn engine (fun () ->
          let req = Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig dst) in
          expect_ok (Ucx.wait req);
          Alcotest.(check bool) "payload" true (Buf.equal src dst)))

let test_eager_sender_completes_locally () =
  (* Eager send completes even if the receive is posted much later. *)
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 64 in
      let dst = Buf.create 64 in
      let send_done_at = ref infinity in
      Engine.spawn engine (fun () ->
          let req = Ucx.tag_send ep01 ~tag:2L (Ucx.Sd_contig src) in
          expect_ok (Ucx.wait req);
          send_done_at := Engine.now engine);
      Engine.spawn engine (fun () ->
          Engine.sleep engine 1_000_000.;
          let req = Ucx.tag_recv w1 ~tag:2L ~mask:(-1L) (Ucx.Rd_contig dst) in
          expect_ok (Ucx.wait req);
          Alcotest.(check bool) "sender finished long before recv" true
            (!send_done_at < 100_000.);
          Alcotest.(check bool) "payload" true (Buf.equal src dst)))

let test_eager_snapshot_semantics () =
  (* After an eager send completes, the source buffer may be reused
     without corrupting the in-flight message. *)
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 128 in
      let expected = Buf.copy src in
      let dst = Buf.create 128 in
      Engine.spawn engine (fun () ->
          let req = Ucx.tag_send ep01 ~tag:3L (Ucx.Sd_contig src) in
          expect_ok (Ucx.wait req);
          Buf.fill src '\xee');
      Engine.spawn engine (fun () ->
          Engine.sleep engine 500_000.;
          let req = Ucx.tag_recv w1 ~tag:3L ~mask:(-1L) (Ucx.Rd_contig dst) in
          expect_ok (Ucx.wait req);
          Alcotest.(check bool) "original bytes delivered" true
            (Buf.equal expected dst)))

let test_iov_roundtrip () =
  with_pair (fun ~engine ~stats ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let r1 = pattern 100 and r2 = pattern 50 and r3 = pattern 7 in
      let d1 = Buf.create 100 and d2 = Buf.create 50 and d3 = Buf.create 7 in
      Engine.spawn engine (fun () ->
          let req = Ucx.tag_send ep01 ~tag:4L (Ucx.Sd_iov [ r1; r2; r3 ]) in
          expect_ok (Ucx.wait req);
          check_int "iov entries recorded" 3 stats.iov_entries);
      Engine.spawn engine (fun () ->
          let req =
            Ucx.tag_recv w1 ~tag:4L ~mask:(-1L) (Ucx.Rd_iov [ d1; d2; d3 ])
          in
          let st = Ucx.wait req in
          expect_ok st;
          check_int "len" 157 st.len;
          Alcotest.(check bool) "r1" true (Buf.equal r1 d1);
          Alcotest.(check bool) "r2" true (Buf.equal r2 d2);
          Alcotest.(check bool) "r3" true (Buf.equal r3 d3)))

let test_iov_to_contig_boundaries () =
  (* iov send received into one contiguous buffer: concatenation order *)
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let a = Buf.of_string "abc" and b = Buf.of_string "defgh" in
      let dst = Buf.create 8 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:5L (Ucx.Sd_iov [ a; b ]))));
      Engine.spawn engine (fun () ->
          expect_ok
            (Ucx.wait (Ucx.tag_recv w1 ~tag:5L ~mask:(-1L) (Ucx.Rd_contig dst)));
          Alcotest.(check string) "concat" "abcdefgh" (Buf.to_string dst)))

let test_contig_to_iov_scatter () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = Buf.of_string "abcdefgh" in
      let d1 = Buf.create 3 and d2 = Buf.create 5 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:5L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          expect_ok
            (Ucx.wait
               (Ucx.tag_recv w1 ~tag:5L ~mask:(-1L) (Ucx.Rd_iov [ d1; d2 ])));
          Alcotest.(check string) "d1" "abc" (Buf.to_string d1);
          Alcotest.(check string) "d2" "defgh" (Buf.to_string d2)))

(* A simple generic descriptor that reverses bytes on pack and
   re-reverses on unpack, to prove callbacks actually run. *)
let reversing_send src =
  let n = Buf.length src in
  Ucx.Sd_generic
    {
      sg_packed_size = n;
      sg_pack =
        (fun ~offset ~dst ->
          let len = min (Buf.length dst) (n - offset) in
          for i = 0 to len - 1 do
            Buf.set dst i (Buf.get src (n - 1 - (offset + i)))
          done;
          len);
      sg_finish = ignore;
      sg_overhead_ns = 0.;
    }

let reversing_recv dst =
  let n = Buf.length dst in
  Ucx.Rd_generic
    {
      rg_capacity = n;
      rg_unpack =
        (fun ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            Buf.set dst (n - 1 - (offset + i)) (Buf.get src i)
          done;
          Buf.length src);
      rg_finish = ignore;
      rg_overhead_ns = 0.;
    }

let run_generic_roundtrip n =
  with_pair (fun ~engine ~stats ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern n in
      let dst = Buf.create n in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:6L (reversing_send src))));
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_recv w1 ~tag:6L ~mask:(-1L) (reversing_recv dst)) in
          expect_ok st;
          check_int "len" n st.len;
          Alcotest.(check bool) "callbacks ran on both sides" true
            (Buf.equal src dst);
          Alcotest.(check bool) "pack callbacks counted" true
            (stats.pack_callbacks >= 1);
          Alcotest.(check bool) "unpack callbacks counted" true
            (stats.unpack_callbacks >= 1)))

let test_generic_eager () = run_generic_roundtrip 500

let test_generic_rndv_fragments () =
  (* 100 KiB > eager limit: pipelined pack over 8 KiB fragments. *)
  run_generic_roundtrip (100 * 1024)

let test_generic_to_contig () =
  (* Generic sender, contiguous receiver: the packed stream lands as-is. *)
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = Buf.of_string "hello" in
      let dst = Buf.create 5 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:8L (reversing_send src))));
      Engine.spawn engine (fun () ->
          expect_ok
            (Ucx.wait (Ucx.tag_recv w1 ~tag:8L ~mask:(-1L) (Ucx.Rd_contig dst)));
          Alcotest.(check string) "packed (reversed) stream" "olleh"
            (Buf.to_string dst)))

let test_truncation_eager () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 100 in
      let dst = Buf.create 50 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:9L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_recv w1 ~tag:9L ~mask:(-1L) (Ucx.Rd_contig dst)) in
          match st.error with
          | Some (Ucx.Truncated { expected; capacity }) ->
              check_int "expected" 100 expected;
              check_int "capacity" 50 capacity
          | _ -> Alcotest.fail "expected truncation error"))

let test_truncation_rndv_completes_sender () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let n = 64 * 1024 in
      let src = pattern n in
      let dst = Buf.create 10 in
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_send ep01 ~tag:9L (Ucx.Sd_contig src)) in
          (* sender sees success even though receiver truncated *)
          check_int "sender len" n st.len);
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_recv w1 ~tag:9L ~mask:(-1L) (Ucx.Rd_contig dst)) in
          match st.error with
          | Some (Ucx.Truncated _) -> ()
          | _ -> Alcotest.fail "expected truncation error"))

let test_pack_callback_error () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1:_ ~ep01 ~ep10:_ ->
      let failing =
        Ucx.Sd_generic
          {
            sg_packed_size = 100;
            sg_pack = (fun ~offset:_ ~dst:_ -> raise (Ucx.Callback_error 42));
            sg_finish = ignore;
            sg_overhead_ns = 0.;
          }
      in
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_send ep01 ~tag:10L failing) in
          match st.error with
          | Some (Ucx.Callback_failed 42) -> ()
          | _ -> Alcotest.fail "expected callback failure"))

let test_unpack_callback_error () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 100 in
      let failing =
        Ucx.Rd_generic
          {
            rg_capacity = 100;
            rg_unpack = (fun ~offset:_ ~src:_ -> raise (Ucx.Callback_error 7));
            rg_finish = ignore;
            rg_overhead_ns = 0.;
          }
      in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:11L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          let st = Ucx.wait (Ucx.tag_recv w1 ~tag:11L ~mask:(-1L) failing) in
          match st.error with
          | Some (Ucx.Callback_failed 7) -> ()
          | _ -> Alcotest.fail "expected callback failure"))

let test_tag_mask_matching () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let a = Buf.of_string "aa" and b = Buf.of_string "bb" in
      let d1 = Buf.create 2 and d2 = Buf.create 2 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:0x1_0005L (Ucx.Sd_contig a)));
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:0x2_0005L (Ucx.Sd_contig b))));
      Engine.spawn engine (fun () ->
          (* Match only on the low 16 bits: first arrival wins. *)
          let st1 =
            Ucx.wait (Ucx.tag_recv w1 ~tag:5L ~mask:0xFFFFL (Ucx.Rd_contig d1))
          in
          Alcotest.(check int64) "first tag" 0x1_0005L st1.tag;
          (* Exact match on the second. *)
          let st2 =
            Ucx.wait (Ucx.tag_recv w1 ~tag:0x2_0005L ~mask:(-1L) (Ucx.Rd_contig d2))
          in
          Alcotest.(check int64) "second tag" 0x2_0005L st2.tag;
          Alcotest.(check string) "payloads" "aabb"
            (Buf.to_string d1 ^ Buf.to_string d2)))

let test_fifo_ordering_same_tag () =
  (* Two same-tag messages of very different sizes must match in send
     order even though the smaller one would naturally arrive first. *)
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let big = pattern 8192 in
      let small = Buf.of_string "x" in
      let d1 = Buf.create 8192 and d2 = Buf.create 8192 in
      Engine.spawn engine (fun () ->
          let r1 = Ucx.tag_send ep01 ~tag:1L (Ucx.Sd_contig big) in
          let r2 = Ucx.tag_send ep01 ~tag:1L (Ucx.Sd_contig small) in
          expect_ok (Ucx.wait r1);
          expect_ok (Ucx.wait r2));
      Engine.spawn engine (fun () ->
          let st1 = Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig d1)) in
          let st2 = Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig d2)) in
          check_int "first is the big one" 8192 st1.len;
          check_int "second is the small one" 1 st2.len))

let test_probe () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 300 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:12L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          let info = Ucx.tag_probe_wait w1 ~tag:12L ~mask:(-1L) in
          check_int "probe len" 300 info.p_len;
          check_int "probe src" 0 info.p_src_worker;
          (* envelope still queued: a normal recv gets it *)
          let dst = Buf.create 300 in
          expect_ok
            (Ucx.wait (Ucx.tag_recv w1 ~tag:12L ~mask:(-1L) (Ucx.Rd_contig dst)));
          Alcotest.(check bool) "payload" true (Buf.equal src dst)))

let test_probe_nonblocking_empty () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01:_ ~ep10:_ ->
      Engine.spawn engine (fun () ->
          Alcotest.(check bool) "no message" true
            (Ucx.tag_probe w1 ~tag:0L ~mask:(-1L) = None)))

let test_mprobe_dequeues () =
  with_pair (fun ~engine ~stats:_ ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 40 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:13L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          let info, msg = Ucx.tag_mprobe_wait w1 ~tag:13L ~mask:(-1L) in
          check_int "len" 40 info.p_len;
          (* after mprobe the message is invisible to probe *)
          Alcotest.(check bool) "dequeued" true
            (Ucx.tag_probe w1 ~tag:13L ~mask:(-1L) = None);
          let dst = Buf.create 40 in
          expect_ok (Ucx.wait (Ucx.msg_recv w1 msg (Ucx.Rd_contig dst)));
          Alcotest.(check bool) "payload" true (Buf.equal src dst)))

let test_bidirectional () =
  with_pair (fun ~engine ~stats:_ ~w0 ~w1 ~ep01 ~ep10 ->
      let a = pattern 64 and b = pattern 64 in
      let da = Buf.create 64 and db = Buf.create 64 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:1L (Ucx.Sd_contig a)));
          expect_ok (Ucx.wait (Ucx.tag_recv w0 ~tag:2L ~mask:(-1L) (Ucx.Rd_contig db))));
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig da)));
          expect_ok (Ucx.wait (Ucx.tag_send ep10 ~tag:2L (Ucx.Sd_contig b))));
      ignore (da, db))

(* --- timing-shape tests: the cost model must reproduce the paper's
   qualitative behaviours --- *)

let pingpong_time ?(config = Config.default) n make_send make_recv =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config ~stats in
  let w0 = Ucx.create_worker ctx in
  let w1 = Ucx.create_worker ctx in
  let ep01 = Ucx.connect w0 w1 in
  let ep10 = Ucx.connect w1 w0 in
  let t = ref 0. in
  Engine.spawn engine (fun () ->
      let start = Engine.now engine in
      expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:1L (make_send n)));
      expect_ok (Ucx.wait (Ucx.tag_recv w0 ~tag:2L ~mask:(-1L) (make_recv n)));
      t := Engine.now engine -. start);
  Engine.spawn engine (fun () ->
      expect_ok (Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (make_recv n)));
      expect_ok (Ucx.wait (Ucx.tag_send ep10 ~tag:2L (make_send n))));
  Engine.run engine;
  !t

let contig_send n = Ucx.Sd_contig (pattern n)
let contig_recv n = Ucx.Rd_contig (Buf.create n)

let test_timing_monotone_in_size () =
  let t1 = pingpong_time 1024 contig_send contig_recv in
  let t2 = pingpong_time 8192 contig_send contig_recv in
  let t3 = pingpong_time (1024 * 1024) contig_send contig_recv in
  Alcotest.(check bool) "monotone" true (t1 < t2 && t2 < t3)

let test_timing_rndv_jump () =
  (* Crossing the eager limit must add a visible handshake cost. *)
  let limit = Config.default.link.eager_limit in
  let below = pingpong_time limit contig_send contig_recv in
  let above = pingpong_time (limit + 64) contig_send contig_recv in
  Alcotest.(check bool) "handshake jump" true (above -. below > 1000.)

let test_timing_iov_no_jump () =
  (* The iov path must NOT jump at the eager limit (paper Fig. 7). *)
  let iov_send n = Ucx.Sd_iov [ pattern n ] in
  let iov_recv n = Ucx.Rd_iov [ Buf.create n ] in
  let limit = Config.default.link.eager_limit in
  let below = pingpong_time limit iov_send iov_recv in
  let above = pingpong_time (limit + 64) iov_send iov_recv in
  Alcotest.(check bool) "no protocol jump" true
    (above -. below < Config.default.link.rndv_handshake_ns /. 2.)

let test_timing_iov_entry_overhead () =
  (* Same bytes, more regions -> more time (Fig. 1 small subvectors). *)
  let total = 64 * 1024 in
  let iov_of k n =
    let per = n / k in
    Ucx.Sd_iov (List.init k (fun _ -> pattern per))
  in
  let iov_recv_of k n =
    let per = n / k in
    Ucx.Rd_iov (List.init k (fun _ -> Buf.create per))
  in
  let few = pingpong_time total (iov_of 4) (iov_recv_of 4) in
  let many = pingpong_time total (iov_of 512) (iov_recv_of 512) in
  Alcotest.(check bool) "per-entry cost visible" true
    (many > few +. (400. *. Config.default.link.iov_entry_ns))

let test_unexpected_alloc_accounting () =
  with_pair (fun ~engine ~stats ~w0:_ ~w1 ~ep01 ~ep10:_ ->
      let src = pattern 512 in
      Engine.spawn engine (fun () ->
          expect_ok (Ucx.wait (Ucx.tag_send ep01 ~tag:1L (Ucx.Sd_contig src))));
      Engine.spawn engine (fun () ->
          Engine.sleep engine 1_000_000.;
          (* message arrived unexpected: buffered on the receiver *)
          check_int "buffered bytes" 512 stats.live_alloc_bytes;
          let dst = Buf.create 512 in
          expect_ok (Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig dst)));
          check_int "buffer released" 0 stats.live_alloc_bytes))

let test_jitter_preserves_fifo () =
  (* With adversarial per-message jitter the per-channel FIFO guarantee
     must still hold: same-tag messages match in send order. *)
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config:Config.default ~stats in
  let rng = Mpicd_simnet.Rng.create 99 in
  Ucx.set_channel_jitter ctx (Some (fun () -> Mpicd_simnet.Rng.float rng 5000.));
  let w0 = Ucx.create_worker ctx in
  let w1 = Ucx.create_worker ctx in
  let ep = Ucx.connect w0 w1 in
  let n = 20 in
  Engine.spawn engine (fun () ->
      for i = 0 to n - 1 do
        let b = Buf.create 4 in
        Buf.set_i32 b 0 (Int32.of_int i);
        expect_ok (Ucx.wait (Ucx.tag_send ep ~tag:5L (Ucx.Sd_contig b)))
      done);
  Engine.spawn engine (fun () ->
      for i = 0 to n - 1 do
        let d = Buf.create 4 in
        expect_ok (Ucx.wait (Ucx.tag_recv w1 ~tag:5L ~mask:(-1L) (Ucx.Rd_contig d)));
        check_int (Printf.sprintf "message %d in order" i) i
          (Int32.to_int (Buf.get_i32 d 0))
      done);
  Engine.run engine

let test_trace_records_protocols () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config:Config.default ~stats in
  let tr = Mpicd_simnet.Trace.create () in
  Ucx.set_trace ctx (Some tr);
  let w0 = Ucx.create_worker ctx in
  let w1 = Ucx.create_worker ctx in
  let ep = Ucx.connect w0 w1 in
  Engine.spawn engine (fun () ->
      expect_ok (Ucx.wait (Ucx.tag_send ep ~tag:1L (Ucx.Sd_contig (pattern 64))));
      expect_ok
        (Ucx.wait (Ucx.tag_send ep ~tag:2L (Ucx.Sd_iov [ pattern 64 ]))));
  Engine.spawn engine (fun () ->
      expect_ok
        (Ucx.wait (Ucx.tag_recv w1 ~tag:1L ~mask:(-1L) (Ucx.Rd_contig (Buf.create 64))));
      expect_ok
        (Ucx.wait (Ucx.tag_recv w1 ~tag:2L ~mask:(-1L) (Ucx.Rd_iov [ Buf.create 64 ]))));
  Engine.run engine;
  let module Trace = Mpicd_simnet.Trace in
  check_int "two sends traced" 2 (List.length (Trace.find tr ~category:"send"));
  check_int "two arrivals" 2 (List.length (Trace.find tr ~category:"arrive"));
  Alcotest.(check bool) "timestamps monotone" true
    (let ts = List.map (fun (e : Trace.event) -> e.time) (Trace.events tr) in
     List.sort compare ts = ts)

(* CRC32 (IEEE 802.3, reflected, as used by the wire checksums) against
   the published check value and a couple of structural identities. *)
let test_crc32_vectors () =
  let module Crc32 = Mpicd_ucx.Crc32 in
  let check_crc msg expected buf =
    Alcotest.(check int32) msg expected (Crc32.digest buf)
  in
  check_crc "check value" 0xCBF43926l (Buf.of_string "123456789");
  check_crc "empty" 0l (Buf.create 0);
  check_crc "single zero byte" 0xD202EF8Dl (Buf.of_string "\x00");
  check_crc "ascii a" 0xE8B7BE43l (Buf.of_string "a");
  let big = pattern (1 lsl 20) in
  let d = Crc32.digest big in
  Alcotest.(check int32) "1 MiB pattern stable" d (Crc32.digest big);
  Alcotest.(check int32) "digest_sub full range" d
    (Crc32.digest_sub big ~pos:0 ~len:(Buf.length big));
  let nine = Buf.of_string "xx123456789yy" in
  Alcotest.(check int32) "digest_sub window" 0xCBF43926l
    (Crc32.digest_sub nine ~pos:2 ~len:9);
  Alcotest.(check bool) "prefix digest differs" true
    (Crc32.digest_sub big ~pos:0 ~len:(1 lsl 19) <> d)

let suite =
  let tc = Alcotest.test_case in
  ( "ucx",
    [
      tc "crc32 published vectors" `Quick test_crc32_vectors;
      tc "contig eager roundtrip" `Quick test_contig_eager_roundtrip;
      tc "contig rndv roundtrip" `Quick test_contig_rndv_roundtrip;
      tc "eager completes locally" `Quick test_eager_sender_completes_locally;
      tc "eager snapshot semantics" `Quick test_eager_snapshot_semantics;
      tc "iov roundtrip" `Quick test_iov_roundtrip;
      tc "iov->contig boundaries" `Quick test_iov_to_contig_boundaries;
      tc "contig->iov scatter" `Quick test_contig_to_iov_scatter;
      tc "generic eager callbacks" `Quick test_generic_eager;
      tc "generic rndv fragments" `Quick test_generic_rndv_fragments;
      tc "generic->contig packed stream" `Quick test_generic_to_contig;
      tc "truncation (eager)" `Quick test_truncation_eager;
      tc "truncation (rndv) sender ok" `Quick test_truncation_rndv_completes_sender;
      tc "pack callback error" `Quick test_pack_callback_error;
      tc "unpack callback error" `Quick test_unpack_callback_error;
      tc "tag mask matching" `Quick test_tag_mask_matching;
      tc "fifo ordering same tag" `Quick test_fifo_ordering_same_tag;
      tc "probe" `Quick test_probe;
      tc "probe nonblocking empty" `Quick test_probe_nonblocking_empty;
      tc "mprobe dequeues" `Quick test_mprobe_dequeues;
      tc "bidirectional" `Quick test_bidirectional;
      tc "timing monotone in size" `Quick test_timing_monotone_in_size;
      tc "timing rndv jump at eager limit" `Quick test_timing_rndv_jump;
      tc "timing iov has no protocol jump" `Quick test_timing_iov_no_jump;
      tc "timing iov per-entry overhead" `Quick test_timing_iov_entry_overhead;
      tc "unexpected message alloc accounting" `Quick test_unexpected_alloc_accounting;
      tc "jitter preserves per-channel FIFO" `Quick test_jitter_preserves_fifo;
      tc "trace records protocol events" `Quick test_trace_records_protocols;
    ] )
