(* Observability: metrics registry, span invariants, exporters, and the
   zero-overhead guarantee (attaching a sink changes nothing). *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Dt = Mpicd_datatype.Datatype
module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics
module Export = Mpicd_obs.Export
module Json = Mpicd_obs.Json
module H = Mpicd_harness.Harness
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel
module Profile = Mpicd_obs.Profile
module Fault = Mpicd_simnet.Fault
module Engine = Mpicd_simnet.Engine

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 7) land 0xff)
  done;
  b

(* --- metrics --- *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "sends" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "interned" true (c == Metrics.counter m "sends");
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.;
  Metrics.set g 7.;
  Metrics.set g 2.;
  check_float "gauge value" 2. (Metrics.gauge_value g);
  check_float "gauge max" 7. (Metrics.gauge_max g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"sends\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "sends"))

let test_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for v = 1 to 1000 do
    Metrics.observe h (float_of_int v)
  done;
  check_int "count" 1000 (Metrics.count h);
  check_float "sum exact" 500500. (Metrics.sum h);
  check_float "min exact" 1. (Metrics.minimum h);
  check_float "max exact" 1000. (Metrics.maximum h);
  let within p expected =
    let got = Metrics.percentile h p in
    let rel = Float.abs (got -. expected) /. expected in
    if rel > 0.10 then
      Alcotest.failf "p%.0f = %.1f, want %.1f +-10%%" p got expected
  in
  within 50. 500.;
  within 95. 950.;
  within 99. 990.;
  (* the extremes stay inside the observed range (clamped), within one
     bucket of the exact value *)
  let p0 = Metrics.percentile h 0. and p100 = Metrics.percentile h 100. in
  Alcotest.(check bool) "p0 near min" true (p0 >= 1. && p0 <= 1.1);
  Alcotest.(check bool) "p100 near max" true (p100 >= 900. && p100 <= 1000.);
  Alcotest.(check bool) "empty percentile is NaN" true
    (Float.is_nan (Metrics.percentile (Metrics.histogram m "empty") 50.))

(* --- span model --- *)

let test_span_nesting () =
  let t = Obs.create () in
  let a = Obs.span_begin t ~time:0. ~track:0 ~cat:"p2p" "a" in
  let b = Obs.span_begin t ~time:1. ~track:0 ~cat:"proto" "b" in
  check_int "b nests under a" a.Obs.sid b.Obs.parent;
  (* nest:false attaches to the innermost open span without becoming a
     parent for later spans *)
  let c = Obs.span_begin t ~time:2. ~track:0 ~cat:"p2p" ~nest:false "c" in
  check_int "c under b" b.Obs.sid c.Obs.parent;
  let d = Obs.span_begin t ~time:3. ~track:0 ~cat:"p2p" "d" in
  check_int "d also under b (c did not push)" b.Obs.sid d.Obs.parent;
  (* other tracks have independent stacks *)
  let x = Obs.span_begin t ~time:0.5 ~track:1 ~cat:"p2p" "x" in
  check_int "tracks are independent" (-1) x.Obs.parent;
  Alcotest.(check bool) "open span" true (Obs.is_open d);
  Obs.span_end t ~time:4. d;
  (* out-of-LIFO end is tolerated *)
  Obs.span_end t ~time:5. a;
  Obs.span_end t ~time:6. b;
  Obs.span_end t ~time:6.5 c;
  Obs.span_end t ~time:7. x;
  Alcotest.(check bool) "all closed" true
    (List.for_all (fun s -> not (Obs.is_open s)) (Obs.spans t));
  (* explicit parent override on pre-computed phases *)
  let p = Obs.span_complete t ~track:0 ~cat:"proto" ~t0:1.5 ~t1:1.75 ~parent:a "ph" in
  check_int "override parent" a.Obs.sid p.Obs.parent;
  (* reader order: (t0, sid) ascending *)
  let ss = Obs.spans t in
  let rec sorted = function
    | s1 :: (s2 :: _ as rest) ->
        (s1.Obs.t0 < s2.Obs.t0
        || (s1.Obs.t0 = s2.Obs.t0 && s1.Obs.sid < s2.Obs.sid))
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by (t0, sid)" true (sorted ss);
  check_int "all spans retained" 6 (List.length ss)

let test_null_sink_noop () =
  let sp =
    Obs.span_begin Obs.null ~time:0. ~track:0 ~cat:"p2p"
      ~args:[ ("x", Obs.Int 1) ]
      "ignored"
  in
  Obs.span_end Obs.null ~time:1. sp;
  Obs.instant Obs.null ~time:0. ~track:0 ~cat:"p2p" "ignored";
  Alcotest.(check bool) "disabled" false (Obs.enabled Obs.null);
  check_int "no spans" 0 (Obs.span_count Obs.null);
  check_int "no instants" 0 (Obs.instant_count Obs.null)

let test_sink_bound () =
  let t = Obs.create ~max_events:3 () in
  for i = 0 to 9 do
    ignore
      (Obs.span_complete t ~track:0 ~cat:"p2p" ~t0:(float_of_int i)
         ~t1:(float_of_int (i + 1)) "s")
  done;
  check_int "retained bounded" 3 (Obs.span_count t);
  check_int "dropped counted" 7 (Obs.dropped t)

(* --- whole-path trace from a real run --- *)

(* Two ranks, both protocol paths: a non-contiguous typed message small
   enough for eager (generic pack/unpack callbacks on both sides) and a
   large contiguous one forcing rendezvous, then a barrier. *)
let traced_world () =
  let obs = Obs.create () in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_obs w obs;
  let dt = Dt.vector ~count:8 ~blocklength:2 ~stride:4 Dt.int32 in
  let big = 1 lsl 17 in
  let tsrc = pattern (Dt.extent dt) and tdst = Buf.create (Dt.extent dt) in
  let bsrc = pattern big and bdst = Buf.create big in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Typed { dt; count = 1; base = tsrc });
        Mpi.send comm ~dst:1 ~tag:1 (Mpi.Bytes bsrc)
      end
      else begin
        ignore (Mpi.recv comm (Mpi.Typed { dt; count = 1; base = tdst }));
        ignore (Mpi.recv comm (Mpi.Bytes bdst))
      end;
      Mpi.barrier comm);
  obs

let test_world_span_invariants () =
  let obs = traced_world () in
  let spans = Obs.spans obs in
  Alcotest.(check bool) "spans recorded" true (spans <> []);
  let cats = Obs.categories obs in
  List.iter
    (fun c ->
      if not (List.mem c cats) then Alcotest.failf "category %S missing" c)
    [ "p2p"; "proto"; "callback"; "fiber" ];
  Alcotest.(check bool) "both rank tracks" true
    (List.mem 0 (Obs.tracks obs) && List.mem 1 (Obs.tracks obs));
  Alcotest.(check bool) "everything closed after run" true
    (List.for_all (fun s -> not (Obs.is_open s)) spans);
  let eps = 1e-6 in
  List.iter
    (fun s ->
      if s.Obs.t1 +. eps < s.Obs.t0 then
        Alcotest.failf "span %s ends before it starts" s.Obs.name;
      if s.Obs.parent >= 0 then begin
        match Obs.find obs s.Obs.parent with
        | None -> Alcotest.failf "span %s has dangling parent" s.Obs.name
        | Some p ->
            if p.Obs.t0 -. eps > s.Obs.t0 then
              Alcotest.failf "span %s starts before its parent %s" s.Obs.name
                p.Obs.name;
            (* callback invocations tile exactly inside their phase *)
            if s.Obs.cat = "callback" then begin
              Alcotest.(check string) "callback parent is a phase" "proto"
                p.Obs.cat;
              if s.Obs.t0 +. eps < p.Obs.t0 || s.Obs.t1 -. eps > p.Obs.t1 then
                Alcotest.failf "callback %s escapes phase %s" s.Obs.name
                  p.Obs.name
            end
      end)
    spans;
  (* both protocols appear, and MPI ops cover send and recv *)
  let names = List.map (fun s -> s.Obs.name) spans in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "expected a %S span" n)
    [ "send"; "recv"; "barrier"; "pack"; "unpack"; "rndv"; "wire" ]

let test_chrome_trace_parse_back () =
  let obs = traced_world () in
  let doc = Export.chrome_trace obs in
  match Json.parse doc with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok j -> (
      (match Option.bind (Json.member "displayTimeUnit" j) Json.to_string with
      | Some "ns" -> ()
      | _ -> Alcotest.fail "displayTimeUnit");
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          Alcotest.(check bool) "covers all spans and instants" true
            (List.length evs >= Obs.span_count obs + Obs.instant_count obs);
          let pids = Hashtbl.create 4 in
          let flow_s = ref 0 and flow_f = ref 0 in
          List.iter
            (fun ev ->
              (match Option.bind (Json.member "ph" ev) Json.to_string with
              | Some ("X" | "B" | "i" | "M") -> ()
              | Some "s" -> incr flow_s
              | Some "f" -> incr flow_f
              | Some ph -> Alcotest.failf "unexpected phase %S" ph
              | None -> Alcotest.fail "event without ph");
              (match Option.bind (Json.member "dur" ev) Json.to_number with
              | Some d when d < 0. -> Alcotest.fail "negative duration"
              | _ -> ());
              match Option.bind (Json.member "pid" ev) Json.to_number with
              | Some pid -> Hashtbl.replace pids pid ()
              | None -> ())
            evs;
          Alcotest.(check bool) "rank pids present" true
            (Hashtbl.mem pids 0. && Hashtbl.mem pids 1.);
          Alcotest.(check bool) "flow events present" true (!flow_s > 0);
          check_int "flow starts pair with flow finishes" !flow_s !flow_f)

let test_exporters_smoke () =
  let obs = traced_world () in
  let tl = Export.timeline obs in
  Alcotest.(check bool) "timeline mentions ranks" true
    (String.length tl > 0);
  let mx = Obs.metrics obs in
  (match Json.parse (Export.metrics_json mx) with
  | Error e -> Alcotest.failf "metrics json: %s" e
  | Ok _ -> ());
  let csv = Export.metrics_csv mx in
  (match String.index_opt csv '\n' with
  | None -> Alcotest.fail "csv has no rows"
  | Some i ->
      Alcotest.(check string) "csv header"
        "name,kind,count,value,sum,mean,min,max,p50,p95,p99"
        (String.sub csv 0 i))

let test_json_parser () =
  (match Json.parse {|{"a":[1,-2.5e2,"xA\n",true,null],"b":{}}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j -> (
      match Option.bind (Json.member "a" j) Json.to_list with
      | Some [ n1; n2; s; Json.Bool true; Json.Null ] ->
          Alcotest.(check (option (float 1e-9))) "int" (Some 1.) (Json.to_number n1);
          Alcotest.(check (option (float 1e-9))) "float" (Some (-250.))
            (Json.to_number n2);
          Alcotest.(check (option string)) "escapes" (Some "xA\n")
            (Json.to_string s)
      | _ -> Alcotest.fail "list shape"));
  (match Json.parse "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ());
  match Json.parse "{broken" with
  | Ok _ -> Alcotest.fail "accepted broken doc"
  | Error _ -> ()

(* --- the zero-overhead guarantee --- *)

(* Attaching the sink must not change what the simulation computes: the
   virtual-time result and every Stats counter must be bit-identical to
   a detached run.  This is the contract that makes it safe to trace
   production-shaped benchmarks. *)
let test_zero_overhead () =
  let kernel =
    match Registry.find "NAS_MG_x" with
    | Some k -> k
    | None -> Alcotest.fail "NAS_MG_x kernel missing"
  in
  let make = Mpicd_figures.Methods.k_custom_pack kernel in
  let bytes =
    let (module K : Kernel.KERNEL) = kernel in
    K.wire_bytes
  in
  let plain = H.pingpong ~reps:3 ~bytes make in
  let obs = Obs.create () in
  let traced = H.pingpong ~reps:3 ~obs ~bytes make in
  Alcotest.(check bool) "sink saw the run" true (Obs.span_count obs > 0);
  check_float "identical virtual latency" plain.H.latency_us
    traced.H.latency_us;
  check_float "identical bandwidth" plain.H.bandwidth_mib_s
    traced.H.bandwidth_mib_s;
  Alcotest.(check bool) "identical stats" true
    (plain.H.stats = traced.H.stats)

(* --- percentile accuracy bound (property) --- *)

(* The documented contract: accuracy bounded by the log-bucket width
   (one quarter-power-of-2 bucket, representative at its midpoint, so
   relative error <= 2^(1/8) - 1 ~ 9.05%) and clamped to the observed
   min/max.  Checked against the exact rank-selected sample. *)
let prop_percentile_bound =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 200)
           (map (fun e -> Float.pow 2. e) (float_bound_inclusive 40.)))
        (float_bound_inclusive 100.))
  in
  QCheck.Test.make ~name:"obs: percentile honors the log-bucket bound"
    ~count:300
    (QCheck.make
       ~print:(fun (vs, p) ->
         Printf.sprintf "n=%d p=%g" (List.length vs) p)
       gen)
    (fun (vs, p) ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "x" in
      List.iter (Metrics.observe h) vs;
      let sorted = List.sort compare vs in
      let n = List.length vs in
      let rank =
        int_of_float (Float.max 1. (Float.round (p /. 100. *. float_of_int n)))
      in
      let exact = List.nth sorted (rank - 1) in
      let got = Metrics.percentile h p in
      let lo = List.hd sorted and hi = List.nth sorted (n - 1) in
      if got < lo || got > hi then
        QCheck.Test.fail_reportf "p%g = %g escapes observed [%g, %g]" p got lo
          hi
      else
        let rel = Float.abs (got -. exact) /. exact in
        if rel > 0.0906 then
          QCheck.Test.fail_reportf "p%g = %g but exact sample is %g (rel %.4f)"
            p got exact rel
        else true)

(* --- Json.number clamping round-trips through Json.parse --- *)

let test_json_number_roundtrip () =
  (match Json.parse (Json.number Float.nan) with
  | Ok Json.Null -> ()
  | Ok _ -> Alcotest.fail "NaN did not serialize to null"
  | Error e -> Alcotest.failf "NaN output does not parse: %s" e);
  List.iter
    (fun (f, want) ->
      match Json.parse (Json.number f) with
      | Error e -> Alcotest.failf "%g output does not parse: %s" f e
      | Ok j -> (
          match Json.to_number j with
          | Some v ->
              check_float (Printf.sprintf "%g clamps to %g" f want) want v;
              Alcotest.(check bool) "clamped value is finite" true
                (Float.is_finite v)
          | None -> Alcotest.failf "%g did not produce a number" f))
    [ (Float.infinity, 1e308); (Float.neg_infinity, -1e308) ];
  List.iter
    (fun f ->
      match Json.parse (Json.number f) with
      | Error e -> Alcotest.failf "%.17g output does not parse: %s" f e
      | Ok j -> (
          match Json.to_number j with
          | None -> Alcotest.failf "%.17g did not produce a number" f
          | Some v ->
              let err =
                if f = 0. then Float.abs v
                else Float.abs (v -. f) /. Float.abs f
              in
              if err > 1e-6 then
                Alcotest.failf "%.17g round-trips to %.17g (rel %.2e)" f v err))
    [ 0.; 1.; -2.5; 123456.; 1e14; -987654321.; 3.14159e20; 1e-9; -6.25e-3 ]

(* --- the wait-state / critical-path profiler --- *)

let sum_phases (pt : Profile.phase_totals) =
  List.fold_left Int64.add 0L
    [ pt.pack; pt.wire; pt.unpack; pt.wait; pt.callback; pt.other ]

let sum_waits (wt : Profile.wait_totals) =
  List.fold_left Int64.add 0L
    [
      wt.late_sender; wt.late_receiver; wt.barrier; wt.rndv_stall;
      wt.retransmit_stall; wt.wait_other;
    ]

(* The conservation contract, as exact Int64 equalities: each rank's
   phases tile its window, its wait classes tile its wait phase, and
   the critical path tiles the window. *)
let check_conserved label (p : Profile.t) =
  let check_i64 = Alcotest.(check int64) in
  List.iter
    (fun (r : Profile.rank_profile) ->
      check_i64
        (Printf.sprintf "%s: rank %d phases tile the window" label r.rank)
        r.total_ps (sum_phases r.phases);
      check_i64
        (Printf.sprintf "%s: rank %d wait classes tile the wait phase" label
           r.rank)
        r.phases.wait (sum_waits r.waits);
      check_i64
        (Printf.sprintf "%s: rank %d cp wait classes tile its cp wait" label
           r.rank)
        r.cp_phases.wait (sum_waits r.cp_waits))
    p.ranks;
  let cp_total =
    List.fold_left
      (fun acc (r : Profile.rank_profile) ->
        Int64.add acc (sum_phases r.cp_phases))
      0L p.ranks
  in
  check_i64 (label ^ ": critical path tiles the window") p.window_ps cp_total

let test_profile_conservation () =
  let p = Profile.analyze (traced_world ()) in
  check_conserved "traced_world" p;
  check_int "two ranks profiled" 2 (List.length p.Profile.ranks);
  Alcotest.(check bool) "messages joined" true
    (p.Profile.messages_joined > 0
    && p.Profile.messages_joined <= p.Profile.messages_total);
  Alcotest.(check bool) "datatype attribution present" true
    (p.Profile.datatypes <> []);
  (match Json.parse (Profile.to_json p) with
  | Error e -> Alcotest.failf "profile json does not parse: %s" e
  | Ok j -> (
      match Option.bind (Json.member "schema" j) Json.to_string with
      | Some "mpicd-profile/1" -> ()
      | _ -> Alcotest.fail "profile json schema marker"));
  (* and on a full figure-run kernel measurement *)
  let kernel =
    match Registry.find "NAS_MG_x" with
    | Some k -> k
    | None -> Alcotest.fail "NAS_MG_x kernel missing"
  in
  let bytes =
    let (module K : Kernel.KERNEL) = kernel in
    K.wire_bytes
  in
  let _, kp =
    H.pingpong_profiled ~reps:2 ~bytes
      (Mpicd_figures.Methods.k_custom_pack kernel)
  in
  check_conserved "NAS_MG_x custom-pack" kp;
  Alcotest.(check bool) "kernel run spends time waiting" true
    (Profile.wait_share kp > 0.)

(* A deliberately late sender: both ranks start at t = 0, the receiver
   posts immediately, every fragment from rank 0 suffers a large extra
   in-flight delay (well under the retransmission timeout, so no
   recovery instants fire).  The receiver's pre-match wait must be
   classified late-sender and appear on its critical path. *)
let test_late_sender_classified () =
  let obs = Obs.create () in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_obs w obs;
  let faults =
    Fault.make ~seed:11
      ~link:{ Fault.clean_link with delay_p = 1.0; delay_ns = 400_000. }
      ~rto_ns:10_000_000. ~hb_period_ns:0. ()
  in
  Mpi.set_faults w (Some faults);
  let n = 4096 in
  let src = pattern n and dst = Buf.create n in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes src)
      else ignore (Mpi.recv comm (Mpi.Bytes dst)));
  let p = Profile.analyze obs in
  check_conserved "late-sender scenario" p;
  let r1 =
    List.find (fun (r : Profile.rank_profile) -> r.rank = 1) p.Profile.ranks
  in
  Alcotest.(check bool) "receiver wait classified late-sender" true
    (r1.waits.late_sender > 0L);
  Alcotest.(check bool) "late-sender dominates the receiver's waits" true
    (r1.waits.late_sender > r1.waits.rndv_stall
    && r1.waits.late_sender > r1.waits.wait_other);
  Alcotest.(check bool) "late-sender wait charged to receiver's critical path"
    true
    (r1.cp_waits.late_sender > 0L)

(* Enriched instrumentation + running the analyzer must not move the
   simulation, fault plans included: a detached faulted run, a traced
   faulted run, and a traced re-run must agree bit-for-bit — and the
   two analyses must be byte-identical (exact replay). *)
let test_zero_overhead_faulted_replay () =
  let kernel =
    match Registry.find "NAS_MG_x" with
    | Some k -> k
    | None -> Alcotest.fail "NAS_MG_x kernel missing"
  in
  let make = Mpicd_figures.Methods.k_custom_pack kernel in
  let bytes =
    let (module K : Kernel.KERNEL) = kernel in
    K.wire_bytes
  in
  let faults =
    Fault.make ~seed:5
      ~link:{ Fault.clean_link with drop_p = 0.02; corrupt_p = 0.01 }
      ()
  in
  let plain = H.pingpong ~reps:3 ~faults ~bytes make in
  let r1, p1 = H.pingpong_profiled ~reps:3 ~faults ~bytes make in
  let r2, p2 = H.pingpong_profiled ~reps:3 ~faults ~bytes make in
  check_float "tracing does not move the faulted latency" plain.H.latency_us
    r1.H.latency_us;
  Alcotest.(check bool) "tracing does not move the faulted stats" true
    (plain.H.stats = r1.H.stats);
  check_float "replay: identical latency" r1.H.latency_us r2.H.latency_us;
  Alcotest.(check bool) "replay: identical stats" true
    (r1.H.stats = r2.H.stats);
  Alcotest.(check string) "replay: byte-identical profiles"
    (Profile.to_json p1) (Profile.to_json p2);
  check_conserved "faulted NAS_MG_x" p1

(* --- metrics bucket table export --- *)

let test_metrics_bucket_export () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1.; 1.5; 3.; 100.; 100.; 1e6 ];
  (match Json.parse (Export.metrics_json ~buckets:true m) with
  | Error e -> Alcotest.failf "bucketed metrics json: %s" e
  | Ok j -> (
      match
        Option.bind (Json.member "lat" j) (fun l ->
            Option.bind (Json.member "buckets" l) Json.to_list)
      with
      | None -> Alcotest.fail "no buckets array"
      | Some bs ->
          let total =
            List.fold_left
              (fun acc bk ->
                match Json.to_list bk with
                | Some [ lo; hi; n ] ->
                    let lo = Option.get (Json.to_number lo)
                    and hi = Option.get (Json.to_number hi)
                    and n = Option.get (Json.to_number n) in
                    Alcotest.(check bool) "bucket range ordered" true (lo < hi);
                    acc + int_of_float n
                | _ -> Alcotest.fail "bucket triple shape")
              0 bs
          in
          check_int "bucket counts cover every observation" 6 total));
  (* default stays bucket-free, so existing consumers see no change *)
  (match Json.parse (Export.metrics_json m) with
  | Error e -> Alcotest.failf "plain metrics json: %s" e
  | Ok j ->
      Alcotest.(check bool) "no buckets by default" true
        (Option.bind (Json.member "lat" j) (Json.member "buckets") = None));
  let csv = Export.metrics_csv ~buckets:true m in
  Alcotest.(check bool) "csv carries bucket rows" true
    (List.exists
       (fun line ->
         String.length line > 4 && String.sub line 0 4 = "lat,"
         && String.length line > 11 && String.sub line 4 7 = "bucket,")
       (String.split_on_char '\n' csv))

let suite =
  let tc = Alcotest.test_case in
  ( "obs",
    [
      tc "metrics counter + gauge" `Quick test_counter_gauge;
      tc "histogram percentiles" `Quick test_histogram_percentiles;
      tc "span nesting + ordering" `Quick test_span_nesting;
      tc "null sink is a no-op" `Quick test_null_sink_noop;
      tc "sink bound drops + counts" `Quick test_sink_bound;
      tc "world span invariants" `Quick test_world_span_invariants;
      tc "chrome trace parses back" `Quick test_chrome_trace_parse_back;
      tc "exporters smoke" `Quick test_exporters_smoke;
      tc "json parser" `Quick test_json_parser;
      tc "zero overhead when attached" `Quick test_zero_overhead;
      QCheck_alcotest.to_alcotest prop_percentile_bound;
      tc "json number clamping round-trips" `Quick test_json_number_roundtrip;
      tc "profile conservation is exact" `Quick test_profile_conservation;
      tc "late sender classified + on critical path" `Quick
        test_late_sender_classified;
      tc "zero overhead under faults + exact replay" `Quick
        test_zero_overhead_faulted_replay;
      tc "metrics bucket table export" `Quick test_metrics_bucket_export;
    ] )
