(* Shared random-datatype generator for the property suites.

   Factored out of test_datatype.ml so the datatype, plan, and
   normalizer suites draw from one distribution; adds a structural
   shrinker (absent from the original arbitrary) so qcheck failures
   report a minimal counterexample tree. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype

(* Fill a buffer with a deterministic byte pattern. *)
let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 7 + 13) land 0xff)
  done;
  b

(* Random datatype generator (small, bounded depth). *)
let gen =
  let open QCheck.Gen in
  let pred =
    oneofl [ Dt.byte; Dt.int16; Dt.int32; Dt.int64; Dt.float32; Dt.float64 ]
  in
  let rec go depth =
    if depth = 0 then pred
    else
      frequency
        [
          (2, pred);
          (2, map2 (fun n e -> Dt.contiguous n e) (1 -- 4) (go (depth - 1)));
          ( 2,
            map2
              (fun (c, b) e ->
                Dt.vector ~count:c ~blocklength:b ~stride:(b + 2) e)
              (pair (1 -- 3) (1 -- 3))
              (go (depth - 1)) );
          ( 1,
            map2
              (fun ds e ->
                let ds = Array.of_list ds in
                let sorted = Array.copy ds in
                Array.sort compare sorted;
                (* strictly increasing, gap >= blocklength *)
                let displacements =
                  Array.mapi (fun i d -> (i * 3) + (d mod 2)) sorted
                in
                Dt.indexed_block ~blocklength:1 ~displacements e)
              (list_size (1 -- 3) (0 -- 5))
              (go (depth - 1)) );
          ( 1,
            map2
              (fun (b1, b2) (e1, e2) ->
                let ext1 = max 1 (Dt.extent e1) in
                Dt.struct_ ~blocklengths:[| b1; b2 |]
                  ~displacements_bytes:[| 0; (b1 * ext1) + 4 |]
                  ~types:[| e1; e2 |])
              (pair (1 -- 2) (1 -- 2))
              (pair (go (depth - 1)) (go (depth - 1))) );
        ]
  in
  go 2

(* Structural shrinker: every candidate strictly reduces the tree (a
   child subtree, one fewer repetition, one fewer index entry), so
   shrinking terminates and preserves constructor validity. *)
let rec shrink t yield =
  let drop_at i a = Array.init (Array.length a - 1) (fun j -> a.(if j < i then j else j + 1)) in
  match Dt.view t with
  | Dt.V_predefined p -> if p <> Dt.Byte then yield Dt.byte
  | Dt.V_contiguous (n, e) ->
      yield e;
      if n > 1 then yield (Dt.contiguous (n - 1) e);
      shrink e (fun e' -> yield (Dt.contiguous n e'))
  | Dt.V_hvector { count; blocklength; stride_bytes; elem } ->
      yield elem;
      let mk ~count ~blocklength =
        Dt.hvector ~count ~blocklength ~stride_bytes elem
      in
      if count > 1 then yield (mk ~count:(count - 1) ~blocklength);
      if blocklength > 1 then yield (mk ~count ~blocklength:(blocklength - 1));
      shrink elem (fun elem' ->
          yield (Dt.hvector ~count ~blocklength ~stride_bytes elem'))
  | Dt.V_hindexed { blocklengths; displacements_bytes; elem } ->
      yield elem;
      let n = Array.length blocklengths in
      if n > 1 then
        for i = 0 to n - 1 do
          yield
            (Dt.hindexed
               ~blocklengths:(drop_at i blocklengths)
               ~displacements_bytes:(drop_at i displacements_bytes)
               elem)
        done;
      Array.iteri
        (fun i bl ->
          if bl > 1 then begin
            let bls = Array.copy blocklengths in
            bls.(i) <- bl - 1;
            yield (Dt.hindexed ~blocklengths:bls ~displacements_bytes elem)
          end)
        blocklengths;
      shrink elem (fun elem' ->
          yield (Dt.hindexed ~blocklengths ~displacements_bytes elem'))
  | Dt.V_struct { blocklengths; displacements_bytes; types } ->
      Array.iter yield types;
      let n = Array.length types in
      if n > 1 then
        for i = 0 to n - 1 do
          yield
            (Dt.struct_
               ~blocklengths:(drop_at i blocklengths)
               ~displacements_bytes:(drop_at i displacements_bytes)
               ~types:(drop_at i types))
        done;
      Array.iteri
        (fun i ty ->
          shrink ty (fun ty' ->
              let tys = Array.copy types in
              tys.(i) <- ty';
              yield (Dt.struct_ ~blocklengths ~displacements_bytes ~types:tys)))
        types
  | Dt.V_resized { lb; extent; elem } ->
      yield elem;
      shrink elem (fun elem' -> yield (Dt.resized ~lb ~extent elem'))

let arb = QCheck.make ~print:Dt.to_string ~shrink gen
