(* mpicd-trace: run one DDTBench kernel pingpong with the observability
   sink attached and export the whole message path as a Perfetto-loadable
   Chrome trace plus metrics dumps, e.g.

     mpicd_trace NAS_MG_x
     mpicd_trace LAMMPS_full --method mpi-ddt --reps 8 --out traces
     mpicd_trace NAS_MG_x --validate        # parse the JSON back, check
                                            # categories and rank tracks *)

open Cmdliner
module Report = Mpicd_harness.Report
module H = Mpicd_harness.Harness
module Figures = Mpicd_figures
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel
module Obs = Mpicd_obs.Obs
module Export = Mpicd_obs.Export
module Json = Mpicd_obs.Json

let methods = [
  "reference"; "manual-pack"; "mpi-ddt"; "mpi-pack-ddt"; "custom-pack";
  "custom-regions";
]

let impl_of_method name k =
  match name with
  | "reference" -> Ok (Figures.Methods.k_reference k)
  | "manual-pack" -> Ok (Figures.Methods.k_manual k)
  | "mpi-ddt" -> Ok (Figures.Methods.k_ddt_direct k)
  | "mpi-pack-ddt" -> Ok (Figures.Methods.k_ddt_pack k)
  | "custom-pack" -> Ok (Figures.Methods.k_custom_pack k)
  | "custom-regions" -> (
      match Figures.Methods.k_custom_regions k () with
      | Some _ ->
          Ok (fun () -> Option.get (Figures.Methods.k_custom_regions k ()))
      | None -> Error "custom-regions is impracticable for this kernel")
  | m ->
      Error
        (Printf.sprintf "unknown method %S (one of: %s)" m
           (String.concat ", " methods))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse an emitted trace back and check it actually carries the whole
   message path: all four span categories, and at least two rank
   processes (the engine pseudo-process does not count). *)
let validate_chrome path =
  let ( let* ) = Result.bind in
  let* j = Json.parse (read_file path) in
  let* evs =
    match Json.member "traceEvents" j with
    | Some l -> (
        match Json.to_list l with
        | Some evs -> Ok evs
        | None -> Error "traceEvents is not an array")
    | None -> Error "no traceEvents member"
  in
  let cats = Hashtbl.create 8 and rank_pids = Hashtbl.create 8 in
  (* flow pairing: every "s" id must meet exactly one "f" id and vice
     versa; begin/end balance: "B" opens must be closed by "E" on the
     same (pid, tid) row — a finished run exports no dangling spans. *)
  let flow_s = Hashtbl.create 64 and flow_f = Hashtbl.create 64 in
  let open_b = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let str m = Option.bind (Json.member m ev) Json.to_string in
      let num m = Option.bind (Json.member m ev) Json.to_number in
      (match str "cat" with
      | Some c -> Hashtbl.replace cats c ()
      | None -> ());
      (match (str "ph", num "id") with
      | Some "s", Some id ->
          Hashtbl.replace flow_s id (1 + Option.value ~default:0 (Hashtbl.find_opt flow_s id))
      | Some "f", Some id ->
          Hashtbl.replace flow_f id (1 + Option.value ~default:0 (Hashtbl.find_opt flow_f id))
      | _ -> ());
      (match (str "ph", num "pid", num "tid") with
      | Some "B", Some pid, Some tid ->
          Hashtbl.replace open_b (pid, tid)
            (1 + Option.value ~default:0 (Hashtbl.find_opt open_b (pid, tid)))
      | Some "E", Some pid, Some tid ->
          Hashtbl.replace open_b (pid, tid)
            (Option.value ~default:0 (Hashtbl.find_opt open_b (pid, tid)) - 1)
      | _ -> ());
      match (str "ph", num "pid") with
      | Some ("X" | "B" | "i"), Some pid when pid < 1000. ->
          Hashtbl.replace rank_pids pid ()
      | _ -> ())
    evs;
  let missing =
    List.filter
      (fun c -> not (Hashtbl.mem cats c))
      [ "p2p"; "proto"; "callback"; "fiber" ]
  in
  let unpaired =
    Hashtbl.fold
      (fun id n acc ->
        if Option.value ~default:0 (Hashtbl.find_opt flow_f id) <> n then
          id :: acc
        else acc)
      flow_s []
    @ Hashtbl.fold
        (fun id _ acc -> if Hashtbl.mem flow_s id then acc else id :: acc)
        flow_f []
  in
  let unbalanced =
    Hashtbl.fold (fun row n acc -> if n <> 0 then row :: acc else acc) open_b []
  in
  if missing <> [] then
    Error ("missing span categories: " ^ String.concat ", " missing)
  else if Hashtbl.length rank_pids < 2 then
    Error
      (Printf.sprintf "expected >= 2 rank tracks, found %d"
         (Hashtbl.length rank_pids))
  else if unpaired <> [] then
    Error
      (Printf.sprintf "%d unpaired flow event id(s), e.g. %g"
         (List.length unpaired) (List.hd unpaired))
  else if unbalanced <> [] then
    let pid, tid = List.hd unbalanced in
    Error
      (Printf.sprintf "unbalanced B/E spans on %d row(s), e.g. pid=%g tid=%g"
         (List.length unbalanced) pid tid)
  else if Hashtbl.length flow_s = 0 then
    Error "no flow events (expected message arrows from mseq joins)"
  else
    Ok
      (List.length evs, Hashtbl.length cats, Hashtbl.length rank_pids,
       Hashtbl.length flow_s)

let run name meth reps out validate quiet =
  (match Registry.find name with
  | None ->
      Printf.eprintf "unknown kernel %S (try `mpicd_bench list`)\n" name;
      exit 2
  | Some (module K : Kernel.KERNEL) -> (
      match impl_of_method meth (module K : Kernel.KERNEL) with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
      | Ok make ->
          (try Sys.mkdir out 0o755 with Sys_error _ -> ());
          let obs = Obs.create () in
          let r = H.pingpong ~reps ~obs ~bytes:K.wire_bytes make in
          let path suffix = Filename.concat out (name ^ suffix) in
          let trace_path = path ".trace.json" in
          Export.write_file trace_path (Export.chrome_trace obs);
          Export.write_file (path ".timeline.txt") (Export.timeline obs);
          Export.write_file (path ".metrics.json")
            (Export.metrics_json (Obs.metrics obs));
          Export.write_file (path ".metrics.csv")
            (Export.metrics_csv (Obs.metrics obs));
          if not quiet then begin
            Printf.printf
              "kernel %s (%s): %d spans, %d instants over %d measured rounds\n"
              K.name meth (Obs.span_count obs) (Obs.instant_count obs) reps;
            Printf.printf "latency %.2f us, bandwidth %.0f MiB/s\n\n"
              r.H.latency_us r.H.bandwidth_mib_s;
            Report.print_metrics ~title:(name ^ " metrics") (Obs.metrics obs);
            Printf.printf "wrote %s (load it at https://ui.perfetto.dev)\n"
              trace_path
          end;
          if validate then
            match validate_chrome trace_path with
            | Ok (nev, ncat, nranks, nflows) ->
                if not quiet then
                  Printf.printf
                    "validate: ok (%d events, %d categories, %d rank tracks, \
                     %d flow pairs)\n"
                    nev ncat nranks nflows
            | Error msg ->
                Printf.eprintf "validate: %s: %s\n" trace_path msg;
                exit 1));
  ()

let cmd =
  let kernel_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"DDTBench kernel name (see `mpicd_bench list`).")
  in
  let method_arg =
    Arg.(
      value
      & opt string "custom-pack"
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            (Printf.sprintf "Transfer method to trace (one of: %s)."
               (String.concat ", " methods)))
  in
  let reps_arg =
    Arg.(value & opt int 4 & info [ "reps" ] ~docv:"N" ~doc:"Measured rounds.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Parse the emitted Chrome trace back and fail unless it has \
             all four span categories, at least two rank tracks, every \
             flow event paired, and balanced B/E spans.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only write files.")
  in
  let doc = "Trace one DDTBench kernel's message path (Perfetto JSON)." in
  Cmd.v
    (Cmd.info "mpicd_trace" ~doc)
    Term.(
      const run $ kernel_arg $ method_arg $ reps_arg $ out_arg $ validate_arg
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
