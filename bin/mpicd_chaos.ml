(* mpicd-chaos: deterministic fault-injection sweep.

   Runs every protocol path (eager/rendezvous x contiguous/generic/iov)
   under a catalogue of fault plans at three fixed seeds, verifying
   payload integrity after every delivery; a crash sweep over a
   resilient collective; and a checkpoint/restart sweep crashing a rank
   at every point of the epoch timeline and requiring byte-identical
   convergence with the fault-free run (--ckpt runs it alone; --crashes
   runs the collective crash sweep alone).  The same sweep replays
   identically on every machine — plans are pure data and all fault
   decisions come from the plan's own RNG stream (docs/FAULTS.md).

   --replay FILE re-executes a repro.json artifact written by
   mpicd_explore: it restores any recorded mutation flags, runs the
   artifact's fault plan against its workload twice, and requires the
   execution render to match the recorded one byte-for-byte (exit 0
   iff it does).  Counterexamples are ordinary fault plans, so replay
   needs no machinery beyond the plan grammar itself.

   Run via `dune build @chaos` (part of `dune runtest`).  Ends with a
   per-scenario pass/fail summary table and exits non-zero if any
   scenario records a failure: a damaged payload, a deadlocked run, a
   fault-free baseline reporting reliability events (the zero-overhead
   guarantee), or a recovered job that fails to converge. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Topology = Mpicd_simnet.Topology
module Obs = Mpicd_obs.Obs
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Dt = Mpicd_datatype.Datatype
module Coll = Mpicd_collectives.Collectives
module Store = Mpicd_restart.Store
module Restart = Mpicd_restart.Restart
module Explore = Mpicd_explore_lib.Explore
module Workloads = Mpicd_explore_lib.Workloads

let seeds = [ 1; 2; 3 ]
let iters = 10
let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s\n" msg)
    fmt

(* Every sweep runs as a named scenario; the per-scenario failure
   deltas feed the summary table, and any non-zero delta forces a
   non-zero exit. *)
let scenarios : (string * int) list ref = ref []

let scenario name f =
  let before = !failures in
  (try f ()
   with e -> failf "%s: raised %s" name (Printexc.to_string e));
  scenarios := (name, !failures - before) :: !scenarios

let summary () =
  let rows = List.rev !scenarios in
  Printf.printf "\n%-18s %s\n" "scenario" "result";
  List.iter
    (fun (name, fails) ->
      Printf.printf "%-18s %s\n" name
        (if fails = 0 then "PASS" else Printf.sprintf "FAIL (%d)" fails))
    rows;
  let bad = List.filter (fun (_, f) -> f > 0) rows in
  Printf.printf "\n%s\n"
    (if bad = [] then "chaos sweep: all scenarios passed"
     else Printf.sprintf "chaos sweep: %d scenario(s) FAILED" (List.length bad));
  exit (if bad = [] then 0 else 1)

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 29 + 3) land 0xff)
  done;
  b

(* --- protocol paths: (send buffer, recv buffer, verify-and-reset) --- *)

let bytes_path n () =
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Bytes src),
    (fun () -> Mpi.Bytes dst),
    fun () ->
      let ok = Buf.equal src dst in
      Buf.fill dst '\000';
      ok )

let typed_path ~count () =
  let dt = Dt.vector ~count ~blocklength:2 ~stride:4 Dt.int32 in
  let src = pattern (Dt.extent dt) in
  let dst = Buf.create (Dt.extent dt) in
  ( (fun () -> Mpi.Typed { dt; count = 1; base = src }),
    (fun () -> Mpi.Typed { dt; count = 1; base = dst }),
    fun () ->
      let ok = ref true in
      Dt.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
          for i = disp to disp + len - 1 do
            if Buf.get_u8 src i <> Buf.get_u8 dst i then ok := false
          done);
      Buf.fill dst '\000';
      !ok )

(* Custom datatype with a 4-byte packed header plus the buffer itself
   as a zero-copy region — the iov path the transport cannot checksum
   fragment-wise (docs/FAULTS.md). *)
let buf_region_dt () : Buf.t Custom.t =
  Custom.create
    {
      Custom.state = (fun _ ~count:_ -> ());
      state_free = ignore;
      query = (fun () _ ~count:_ -> 4);
      pack =
        (fun () b ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (4 - offset) in
          for i = 0 to len - 1 do
            Buf.set_u8 dst i ((Buf.length b lsr (8 * (offset + i))) land 0xff)
          done;
          len);
      unpack =
        (fun () b ~count:_ ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            if (Buf.length b lsr (8 * (offset + i))) land 0xff <> Buf.get_u8 src i
            then raise (Custom.Error 99)
          done);
      region_count = Some (fun () _ ~count:_ -> 1);
      regions = Some (fun () b ~count:_ -> [| b |]);
    }

let custom_path n () =
  let dt = buf_region_dt () in
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Custom { dt; obj = src; count = 1 }),
    (fun () -> Mpi.Custom { dt; obj = dst; count = 1 }),
    fun () ->
      let ok = Buf.equal src dst in
      Buf.fill dst '\000';
      ok )

let paths =
  [
    ("eager-contig", fun () -> bytes_path 1024 ());
    ("rndv-contig", fun () -> bytes_path (128 * 1024) ());
    ("eager-generic", fun () -> typed_path ~count:64 ());
    ("rndv-generic", fun () -> typed_path ~count:4096 ());
    ("iov-custom", fun () -> custom_path 40000 ());
  ]

(* --- plan catalogue, in the --faults plan-string grammar --- *)

let plan_specs =
  [
    ("clean", "");
    ("drop", "drop=0.05,rto=5000");
    ("corrupt", "corrupt=0.05,rto=5000");
    ("dup", "dup=0.1");
    ("delay", "delay_p=0.2,delay=2000");
    ("flap", "flap=50000/5000");
    ("mixed", "drop=0.03,corrupt=0.02,dup=0.05,rto=5000");
  ]

let plan_of ~seed spec =
  let s =
    if spec = "" then Printf.sprintf "seed=%d" seed
    else Printf.sprintf "seed=%d,%s" seed spec
  in
  match Fault.of_string s with
  | Ok p -> p
  | Error e ->
      failf "plan %S: %s" s e;
      Fault.make ~seed ()

(* One cell: [iters] verified messages 0 -> 1 under one plan. *)
let run_cell ~plan ~path mk =
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let send_buf, recv_buf, verify = mk () in
  let damaged = ref 0 in
  (try
     Mpi.run w (fun comm ->
         if Mpi.rank comm = 0 then
           for i = 1 to iters do
             Mpi.send comm ~dst:1 ~tag:i (send_buf ())
           done
         else
           for i = 1 to iters do
             ignore (Mpi.recv comm ~source:0 ~tag:i (recv_buf ()));
             if not (verify ()) then incr damaged
           done)
   with e -> failf "%s: run raised %s" path (Printexc.to_string e));
  if !damaged > 0 then failf "%s: %d damaged payload(s)" path !damaged;
  Mpi.world_stats w

(* --- crash sweep: process failure during a collective ---

   A 5-rank world runs [Coll.resilient_allreduce_f64] while the plan
   crashes ranks at fixed virtual times (docs/RESILIENCE.md).  Checked
   per cell: no rank hangs (every fiber records an outcome and the run
   terminates); every surviving rank commits a result; each committed
   result is exactly the reduction over the committing rank's final
   group; ranks that give up are crashed ranks failing with
   [Peer_failed]/[Revoked]; completion lands within a bounded virtual
   deadline of the last crash; and the whole cell replays bit-identically
   (outcomes and counters) when run a second time with the same seed. *)

let crash_size = 5
let crash_floats = 4096 (* 32 KiB per message: the rendezvous path *)

(* integer-valued contributions, so tree-reduction order cannot perturb
   the sums and committed results compare exactly *)
let contribution r =
  Array.init crash_floats (fun j -> float_of_int ((r + 1) * ((j mod 7) + 1)))

type crash_outcome =
  | Committed of { group : int list; data : float array; shrinks : int; t : float }
  | Gave_up of { err : string; t : float }

let err_name : Mpi.error -> string = function
  | Mpi.Peer_failed { peer } -> Printf.sprintf "peer_failed:%d" peer
  | Mpi.Revoked -> "revoked"
  | Mpi.Timeout _ -> "timeout"
  | Mpi.Data_corrupted -> "data_corrupted"
  | Mpi.Truncated _ -> "truncated"
  | Mpi.Callback_failed c -> Printf.sprintf "callback_failed:%d" c

let data_digest data =
  Array.fold_left
    (fun acc v -> Int64.add (Int64.mul acc 31L) (Int64.bits_of_float v))
    7L data

let crash_outcome_str = function
  | Committed { group; data; shrinks; t } ->
      Printf.sprintf "ok group=[%s] digest=%Lx shrinks=%d t=%.0f"
        (String.concat ";" (List.map string_of_int group))
        (data_digest data) shrinks t
  | Gave_up { err; t } -> Printf.sprintf "gave_up %s t=%.0f" err t

let crash_specs =
  [
    ("crash-mid", "crash=3@20000,hb=100000,rto=5000");
    ("crash-root", "crash=0@15000,hb=100000,rto=5000");
    ("crash-two", "crash=1@10000,crash=4@60000,hb=100000,rto=5000");
    ("crash-late", "crash=2@2000000,hb=100000,rto=5000");
    ("crash-drop", "crash=2@30000,drop=0.03,hb=100000,rto=5000");
  ]

let run_crash_cell ~plan =
  let w = Mpi.create_world ~size:crash_size () in
  Mpi.set_faults w (Some plan);
  let engine = Mpi.world_engine w in
  let outcomes = Array.make crash_size None in
  (try
     Mpi.run w (fun comm ->
         let me = Mpi.rank comm in
         let data = contribution me in
         match Coll.resilient_allreduce_f64 comm ~op:`Sum data with
         | comm', shrinks ->
             let group =
               List.init (Mpi.size comm') (Mpi.world_rank_of comm')
             in
             outcomes.(me) <-
               Some
                 (Committed
                    { group; data = Array.copy data; shrinks;
                      t = Engine.now engine })
         | exception Mpi.Mpi_error err ->
             outcomes.(me) <-
               Some (Gave_up { err = err_name err; t = Engine.now engine }))
   with e -> failf "crash cell: run raised %s" (Printexc.to_string e));
  (outcomes, Mpi.world_stats w)

let check_crash_cell ~name ~seed ~plan outcomes =
  let crashed r = Fault.crash_time plan ~rank:r <> None in
  let crash_max =
    List.fold_left
      (fun m (_, t) -> Float.max m t)
      0. (Fault.earliest_crashes plan)
  in
  (* generous, but bounded: detection latency is hb + 2 latencies and
     recovery (revoke, shrink, retry) is a few hundred microseconds *)
  let deadline = crash_max +. 10e6 in
  let expected group =
    let acc = Array.make crash_floats 0. in
    List.iter
      (fun r ->
        let c = contribution r in
        Array.iteri (fun j v -> acc.(j) <- acc.(j) +. v) c)
      group;
    acc
  in
  Array.iteri
    (fun r oc ->
      match oc with
      | None -> failf "%s seed %d: rank %d has no outcome (hang?)" name seed r
      | Some (Committed { group; data; t; _ }) ->
          if not (List.mem r group) then
            failf "%s seed %d: rank %d committed a group excluding itself"
              name seed r;
          if data <> expected group then
            failf "%s seed %d: rank %d result is not the reduction over %s"
              name seed r
              (String.concat ";" (List.map string_of_int group));
          if t > deadline then
            failf "%s seed %d: rank %d finished at %.0f, past deadline %.0f"
              name seed r t deadline
      | Some (Gave_up { err; t }) ->
          if not (crashed r) then
            failf "%s seed %d: surviving rank %d gave up (%s)" name seed r err;
          (match String.index_opt err ':' with
          | Some i when String.sub err 0 i = "peer_failed" -> ()
          | _ when err = "revoked" -> ()
          | _ -> failf "%s seed %d: rank %d gave up with %s" name seed r err);
          if t > deadline then
            failf "%s seed %d: rank %d gave up at %.0f, past deadline %.0f"
              name seed r t deadline)
    outcomes

let crash_stats_str (s : Stats.t) =
  Printf.sprintf "retx=%d detect=%d cancel=%d revoke=%d shrink=%d agree=%d"
    s.Stats.retransmits s.Stats.failures_detected s.Stats.ops_cancelled
    s.Stats.comm_revokes s.Stats.comm_shrinks s.Stats.comm_agreements

let crash_sweep_spec (name, spec) =
  List.iter
    (fun seed ->
      let plan = plan_of ~seed spec in
      let outcomes, stats = run_crash_cell ~plan in
      check_crash_cell ~name ~seed ~plan outcomes;
      (* exact replay: the same seed must reproduce the same
         outcomes and the same event counts *)
      let outcomes2, stats2 = run_crash_cell ~plan in
      let render ocs =
        String.concat "|"
          (Array.to_list
             (Array.map
                (function
                  | None -> "none" | Some oc -> crash_outcome_str oc)
                ocs))
      in
      if render outcomes <> render outcomes2 then
        failf "%s seed %d: replay diverged:\n  %s\n  %s" name seed
          (render outcomes) (render outcomes2);
      if crash_stats_str stats <> crash_stats_str stats2 then
        failf "%s seed %d: replay counter mismatch: %s vs %s" name seed
          (crash_stats_str stats) (crash_stats_str stats2);
      let ok, gave =
        Array.fold_left
          (fun (ok, gave) -> function
            | Some (Committed _) -> (ok + 1, gave)
            | Some (Gave_up _) -> (ok, gave + 1)
            | None -> (ok, gave))
          (0, 0) outcomes
      in
      Printf.printf "%-12s %-6d ok=%d quit=%d %s\n" name seed ok gave
        (crash_stats_str stats))
    seeds

let crash_sweep () =
  Printf.printf "%-12s %-6s %-10s %s\n" "plan" "seed" "outcome" "resilience";
  List.iter
    (fun ((name, _) as cs) -> scenario ("crash:" ^ name) (fun () -> crash_sweep_spec cs))
    crash_specs

(* --- checkpoint/restart sweep (--ckpt) ---

   A 3-rank ring-exchange stencil runs under [Restart.run_job] with a
   crash injected at every point of the epoch timeline: for each rank
   and each inter-cut gap, the rank is crashed at two offsets inside
   the window between consecutive epoch cuts (learned from a golden
   instrumented run).  Checked per cell: the job completes through a
   respawned replacement world, every replacement restores a
   globally-complete epoch, re-execution raises no [Replay_diverged],
   and the recovered run converges *byte-identically* to the fault-free
   run — both the per-rank final application state and every snapshot
   of the final epoch in the store (docs/RESILIENCE.md). *)

let ckpt_size = 3
let ckpt_epochs = 4
let ckpt_offsets = [ 0.35; 0.65 ]
let src_len dt ~count = max 1 (Dt.ub dt + ((count - 1) * Dt.extent dt))

let mesh_app ~epochs ~finals =
  let dt = Dt.vector ~count:4 ~blocklength:1 ~stride:2 Dt.float64 in
  {
    Restart.epochs;
    init =
      (fun rt ->
        let c = Restart.comm rt in
        let me = Mpi.rank c in
        let grid = Buf.create (src_len dt ~count:1) in
        for i = 0 to 3 do
          Buf.set_f64 grid (16 * i) (float_of_int ((100 * me) + i))
        done;
        Restart.register rt ~name:"grid" ~dt ~count:1 grid);
    step =
      (fun rt ~epoch ->
        let c = Restart.comm rt in
        let me = Mpi.rank c and n = Mpi.size c in
        let grid = List.assoc "grid" (Restart.registered rt) in
        let right = (me + 1) mod n and left = (me - 1 + n) mod n in
        Restart.send rt ~dst:right ~tag:4
          (Mpi.Typed { dt; count = 1; base = grid });
        let inb = Buf.create (src_len dt ~count:1) in
        ignore
          (Restart.recv rt ~source:left ~tag:4
             (Mpi.Typed { dt; count = 1; base = inb }));
        for i = 0 to 3 do
          Buf.set_f64 grid (16 * i)
            ((Buf.get_f64 grid (16 * i) *. 0.75)
            +. (Buf.get_f64 inb (16 * i) *. 0.25)
            +. float_of_int (epoch * (i + 1)));
          if epoch = epochs then
            Buf.set_f64 finals.(me) (8 * i) (Buf.get_f64 grid (16 * i))
        done);
  }

let epoch_cut_times obs =
  List.filter_map
    (fun (i : Obs.instant) ->
      if i.Obs.i_name = "epoch_complete" then
        match List.assoc_opt "epoch" i.Obs.i_args with
        | Some (Obs.Int e) -> Some (e, i.Obs.i_time)
        | _ -> None
      else None)
    (Obs.instants obs)

let ckpt_crash_cell ~golden ~store_g ~crash_rank ~gap ~frac ~crash_at =
  let size = ckpt_size and epochs = ckpt_epochs in
  let cell = Printf.sprintf "ckpt r%d gap%d@%.2f" crash_rank gap frac in
  let finals = Array.init size (fun _ -> Buf.create 32) in
  let store = Store.create () in
  let plan =
    Fault.make ~crashes:[ (crash_rank, crash_at) ] ~hb_period_ns:20_000. ()
  in
  let report =
    Restart.run_job ~plan ~store ~job:"mesh" ~size
      (mesh_app ~epochs ~finals)
  in
  if not report.Restart.completed then failf "%s: job did not complete" cell;
  if report.Restart.worlds_used < 2 then
    failf "%s: crash at %.0f never fired (%d world)" cell crash_at
      report.Restart.worlds_used;
  (match report.Restart.start_epochs with
  | -1 :: rest ->
      List.iter
        (fun e ->
          if e < 0 || e > epochs then
            failf "%s: replacement restored bogus epoch %d" cell e)
        rest
  | _ -> failf "%s: first world did not start fresh" cell);
  for r = 0 to size - 1 do
    if not (Buf.equal golden.(r) finals.(r)) then
      failf "%s: rank %d final state differs from fault-free run" cell r
  done;
  let prefix = Printf.sprintf "mesh/ckpt/e%04d/" epochs in
  List.iter
    (fun path ->
      let a = Option.get (Store.read store_g path) in
      match Store.read store path with
      | Some b when Buf.equal a b -> ()
      | Some _ -> failf "%s: %s differs from fault-free run" cell path
      | None -> failf "%s: %s missing from recovered run" cell path)
    (Store.list store_g ~prefix);
  Printf.printf "%-22s worlds=%d restore=[%s]\n" cell
    report.Restart.worlds_used
    (String.concat ";"
       (List.map string_of_int (List.tl report.Restart.start_epochs)))

let ckpt_sweep () =
  let size = ckpt_size and epochs = ckpt_epochs in
  (* golden fault-free run, instrumented to learn the epoch timeline *)
  let golden = Array.init size (fun _ -> Buf.create 32) in
  let store_g = Store.create () in
  let obs = Obs.create () in
  let windows = ref [] in
  scenario "ckpt:golden" (fun () ->
      let report =
        Restart.run_job ~obs ~store:store_g ~job:"mesh" ~size
          (mesh_app ~epochs ~finals:golden)
      in
      if not report.Restart.completed then failf "ckpt golden: incomplete";
      if report.Restart.worlds_used <> 1 then
        failf "ckpt golden: %d worlds for a fault-free run"
          report.Restart.worlds_used;
      let times = epoch_cut_times obs in
      let t_of e =
        List.filter_map (fun (e', t) -> if e' = e then Some t else None) times
      in
      (* crash windows: between the last rank to finish cut g and the
         first rank to start... conservatively, the first to finish cut
         g+1 — anywhere in between, epoch g is the latest complete cut *)
      for g = 0 to epochs - 1 do
        let lo = List.fold_left Float.max neg_infinity (t_of g) in
        let hi = List.fold_left Float.min infinity (t_of (g + 1)) in
        if lo > 0. && hi > lo then windows := (g, lo, hi) :: !windows
        else failf "ckpt golden: no crash window for gap %d" g
      done);
  Printf.printf "%-22s %s\n" "cell" "recovery";
  List.iter
    (fun (g, lo, hi) ->
      scenario
        (Printf.sprintf "ckpt:gap%d" g)
        (fun () ->
          for crash_rank = 0 to size - 1 do
            List.iter
              (fun frac ->
                let crash_at = lo +. (frac *. (hi -. lo)) in
                ckpt_crash_cell ~golden ~store_g ~crash_rank ~gap:g ~frac
                  ~crash_at)
              ckpt_offsets
          done))
    (List.sort compare !windows)

(* --- scale sweep: thousand-rank collectives over a modeled network ---

   Two scenarios at --ranks ranks (default 1024) over the --topology
   network model (default fattree): a fault-free allreduce checked
   against the closed-form sum, and a crash mid-allreduce recovered by
   [Coll.resilient_allreduce_f64].  Both run twice and must replay
   bit-identically — virtual time, event counts, congestion counters
   and every rank's outcome. *)

let scale_ranks = ref 1024
let scale_topology = ref "fattree"

let scale_allreduce_once () =
  let n = !scale_ranks in
  let topology = Topology.of_string !scale_topology ~nranks:n in
  let w = Mpi.create_world ~topology ~size:n () in
  let checksum = ref 0. in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let data = [| float_of_int me; 1. |] in
      Coll.allreduce_f64 comm ~op:`Sum data;
      if me = 0 then checksum := data.(0));
  let s = Mpi.world_stats w in
  Printf.sprintf "sum=%.0f t=%.0f events=%d congestion=%d/%.0f" !checksum
    (Engine.now (Mpi.world_engine w))
    s.Stats.events_scheduled_total
    (Topology.congestion_events topology)
    (Topology.congestion_wait_ns topology)

let scale_crash_once ~plan =
  let n = !scale_ranks in
  let topology = Topology.of_string !scale_topology ~nranks:n in
  let w = Mpi.create_world ~topology ~size:n () in
  Mpi.set_faults w (Some plan);
  let engine = Mpi.world_engine w in
  let outcomes = Array.make n "none" in
  (try
     Mpi.run w (fun comm ->
         let me = Mpi.rank comm in
         (* integer-valued contributions: tree-reduction order cannot
            perturb the sums, so results compare exactly *)
         let data = [| float_of_int (me + 1); float_of_int (2 * (me + 1)) |] in
         match Coll.resilient_allreduce_f64 comm ~op:`Sum data with
         | comm', shrinks ->
             outcomes.(me) <-
               Printf.sprintf "ok n=%d shrinks=%d sum=%.0f/%.0f t=%.0f"
                 (Mpi.size comm') shrinks data.(0) data.(1) (Engine.now engine)
         | exception Mpi.Mpi_error err ->
             outcomes.(me) <-
               Printf.sprintf "gave_up %s t=%.0f" (err_name err)
                 (Engine.now engine))
   with e -> failf "scale crash: run raised %s" (Printexc.to_string e));
  (outcomes, Mpi.world_stats w)

let scale_sweep () =
  let n = !scale_ranks in
  scenario "scale:allreduce" (fun () ->
      let r1 = scale_allreduce_once () in
      let expected = Printf.sprintf "sum=%.0f" (float_of_int (n * (n - 1) / 2)) in
      if String.length r1 < String.length expected
         || String.sub r1 0 (String.length expected) <> expected
      then failf "scale allreduce: got %s, expected %s..." r1 expected;
      let r2 = scale_allreduce_once () in
      if r1 <> r2 then
        failf "scale allreduce: replay diverged:\n  %s\n  %s" r1 r2;
      Printf.printf "scale allreduce %d ranks over %s: %s\n" n !scale_topology
        r1);
  scenario "scale:crash" (fun () ->
      let crash_rank = 3 in
      let plan =
        Fault.make
          ~crashes:[ (crash_rank, 20_000.) ]
          ~hb_period_ns:100_000. ~rto_ns:5_000. ()
      in
      let outcomes, stats = scale_crash_once ~plan in
      (* survivors all commit the reduction over exactly the survivor
         group; sums of 1..n minus the crashed rank's contribution *)
      let survivors = n - 1 in
      let sum1 = (n * (n + 1) / 2) - (crash_rank + 1) in
      let want =
        Printf.sprintf "ok n=%d shrinks=1 sum=%d/%d" survivors sum1 (2 * sum1)
      in
      Array.iteri
        (fun r oc ->
          if r <> crash_rank then
            if
              String.length oc < String.length want
              || String.sub oc 0 (String.length want) <> want
            then
              failf "scale crash: rank %d outcome %S, expected %S..." r oc want)
        outcomes;
      let outcomes2, stats2 = scale_crash_once ~plan in
      if outcomes <> outcomes2 then failf "scale crash: replay diverged";
      if crash_stats_str stats <> crash_stats_str stats2 then
        failf "scale crash: replay counter mismatch: %s vs %s"
          (crash_stats_str stats) (crash_stats_str stats2);
      Printf.printf "scale crash %d ranks over %s: rank0 %s  [%s]\n" n
        !scale_topology outcomes.(0) (crash_stats_str stats))

(* --- repro replay (--replay FILE) --- *)

let replay_die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "mpicd_chaos --replay: %s\n" msg;
      exit 2)
    fmt

let replay_repro file =
  let doc =
    try
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e -> replay_die "%s" e
  in
  let r =
    match Explore.repro_of_json doc with
    | Ok r -> r
    | Error e -> replay_die "%s: %s" file e
  in
  let wl =
    match Workloads.find r.Explore.rj_workload with
    | Some wl -> wl
    | None -> replay_die "%s: unknown workload %S" file r.Explore.rj_workload
  in
  if wl.Workloads.wl_size <> r.Explore.rj_size then
    replay_die "%s: workload %s runs at size %d, artifact says %d" file
      r.Explore.rj_workload wl.Workloads.wl_size r.Explore.rj_size;
  List.iter
    (function
      | "revoke_oneshot" -> Mpi.Mutation.revoke_oneshot := true
      | m -> replay_die "%s: unknown mutation flag %S" file m)
    r.Explore.rj_mutations;
  match Explore.replay wl r.Explore.rj_plan with
  | Error e -> replay_die "not deterministic: %s" e
  | Ok res ->
      let render = res.Workloads.res_render in
      let fp = Explore.fingerprint render in
      if render = r.Explore.rj_render && fp = r.Explore.rj_fingerprint then begin
        Printf.printf
          "replay %s: PASS (workload %s, fingerprint %s, failure %s \
           reproduced byte-identically)\n"
          file r.Explore.rj_workload fp r.Explore.rj_failure;
        exit 0
      end
      else begin
        Printf.printf
          "replay %s: FAIL — render diverged from artifact\n\
           --- recorded (fingerprint %s)\n\
           %s\n\
           --- replayed (fingerprint %s)\n\
           %s\n"
          file r.Explore.rj_fingerprint r.Explore.rj_render fp render;
        exit 1
      end

let () =
  (match Array.to_list Sys.argv with
  | _ :: "--replay" :: file :: _ -> replay_repro file
  | argv when List.mem "--replay" argv ->
      replay_die "--replay needs a repro.json path"
  | _ -> ());
  (* --ranks / --topology parameterize the scale sweep *)
  let rec scan = function
    | "--ranks" :: v :: rest ->
        (match int_of_string_opt v with
        | Some r when r >= 2 -> scale_ranks := r
        | _ ->
            Printf.eprintf "mpicd_chaos: --ranks needs an integer >= 2\n";
            exit 2);
        scan rest
    | "--topology" :: v :: rest ->
        (try ignore (Topology.of_string v ~nranks:2)
         with Invalid_argument msg ->
           Printf.eprintf "mpicd_chaos: %s\n" msg;
           exit 2);
        scale_topology := v;
        scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (Array.to_list Sys.argv);
  let only_crashes = Array.mem "--crashes" Sys.argv in
  let only_ckpt = Array.mem "--ckpt" Sys.argv in
  let only_scale = Array.mem "--scale" Sys.argv in
  if only_crashes then begin
    crash_sweep ();
    summary ()
  end;
  if only_ckpt then begin
    ckpt_sweep ();
    summary ()
  end;
  if only_scale then begin
    scale_sweep ();
    summary ()
  end;
  (* Baseline: no plan attached at all must report zero reliability
     events and perform zero reliability work. *)
  scenario "baseline" (fun () ->
      List.iter
        (fun (path, mk) ->
          let w = Mpi.create_world ~size:2 () in
          let send_buf, recv_buf, verify = mk () in
          Mpi.run w (fun comm ->
              if Mpi.rank comm = 0 then
                for i = 1 to iters do
                  Mpi.send comm ~dst:1 ~tag:i (send_buf ())
                done
              else
                for i = 1 to iters do
                  ignore (Mpi.recv comm ~source:0 ~tag:i (recv_buf ()));
                  if not (verify ()) then
                    failf "baseline %s: payload damaged" path
                done);
          let s = Mpi.world_stats w in
          if Stats.reliability_events s <> 0 then
            failf "baseline %s: %d reliability events without a fault plan"
              path
              (Stats.reliability_events s))
        paths;
      Printf.printf "baseline: zero reliability events on all %d paths\n\n"
        (List.length paths));
  Printf.printf "%-8s %-8s %-14s %6s %6s %6s %6s %6s %6s\n" "plan" "seed"
    "path" "retx" "drop" "corr" "dup" "flap" "fall";
  List.iter
    (fun (pname, spec) ->
      scenario ("matrix:" ^ pname) (fun () ->
          List.iter
            (fun seed ->
              let plan = plan_of ~seed spec in
              List.iter
                (fun (path, mk) ->
                  let s = run_cell ~plan ~path mk in
                  (* a clean plan attached engages the reliable protocol
                     (acks flow) but must do zero recovery work *)
                  if
                    pname = "clean"
                    && Stats.reliability_events s <> s.Stats.acks
                  then
                    failf
                      "clean plan %s seed %d: recovery work on a clean link"
                      path seed;
                  Printf.printf "%-8s %-8d %-14s %6d %6d %6d %6d %6d %6d\n"
                    pname seed path s.Stats.retransmits s.Stats.frags_dropped
                    s.Stats.frags_corrupted s.Stats.frags_duplicated
                    s.Stats.flap_waits s.Stats.iov_fallbacks)
                paths)
            seeds))
    plan_specs;
  Printf.printf "\n";
  crash_sweep ();
  Printf.printf "\n";
  ckpt_sweep ();
  Printf.printf "\n";
  scale_sweep ();
  summary ()
