(* mpicd-chaos: deterministic fault-injection sweep.

   Runs every protocol path (eager/rendezvous x contiguous/generic/iov)
   under a catalogue of fault plans at three fixed seeds, verifying
   payload integrity after every delivery.  The same sweep replays
   identically on every machine — plans are pure data and all fault
   decisions come from the plan's own RNG stream (docs/FAULTS.md).

   Run via `dune build @chaos` (part of `dune runtest`).  Exits
   non-zero if any payload is damaged, a run deadlocks, or a fault-free
   baseline reports reliability events (the zero-overhead guarantee). *)

module Buf = Mpicd_buf.Buf
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Dt = Mpicd_datatype.Datatype

let seeds = [ 1; 2; 3 ]
let iters = 10
let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s\n" msg)
    fmt

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 29 + 3) land 0xff)
  done;
  b

(* --- protocol paths: (send buffer, recv buffer, verify-and-reset) --- *)

let bytes_path n () =
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Bytes src),
    (fun () -> Mpi.Bytes dst),
    fun () ->
      let ok = Buf.equal src dst in
      Buf.fill dst '\000';
      ok )

let typed_path ~count () =
  let dt = Dt.vector ~count ~blocklength:2 ~stride:4 Dt.int32 in
  let src = pattern (Dt.extent dt) in
  let dst = Buf.create (Dt.extent dt) in
  ( (fun () -> Mpi.Typed { dt; count = 1; base = src }),
    (fun () -> Mpi.Typed { dt; count = 1; base = dst }),
    fun () ->
      let ok = ref true in
      Dt.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
          for i = disp to disp + len - 1 do
            if Buf.get_u8 src i <> Buf.get_u8 dst i then ok := false
          done);
      Buf.fill dst '\000';
      !ok )

(* Custom datatype with a 4-byte packed header plus the buffer itself
   as a zero-copy region — the iov path the transport cannot checksum
   fragment-wise (docs/FAULTS.md). *)
let buf_region_dt () : Buf.t Custom.t =
  Custom.create
    {
      Custom.state = (fun _ ~count:_ -> ());
      state_free = ignore;
      query = (fun () _ ~count:_ -> 4);
      pack =
        (fun () b ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (4 - offset) in
          for i = 0 to len - 1 do
            Buf.set_u8 dst i ((Buf.length b lsr (8 * (offset + i))) land 0xff)
          done;
          len);
      unpack =
        (fun () b ~count:_ ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            if (Buf.length b lsr (8 * (offset + i))) land 0xff <> Buf.get_u8 src i
            then raise (Custom.Error 99)
          done);
      region_count = Some (fun () _ ~count:_ -> 1);
      regions = Some (fun () b ~count:_ -> [| b |]);
    }

let custom_path n () =
  let dt = buf_region_dt () in
  let src = pattern n in
  let dst = Buf.create n in
  ( (fun () -> Mpi.Custom { dt; obj = src; count = 1 }),
    (fun () -> Mpi.Custom { dt; obj = dst; count = 1 }),
    fun () ->
      let ok = Buf.equal src dst in
      Buf.fill dst '\000';
      ok )

let paths =
  [
    ("eager-contig", fun () -> bytes_path 1024 ());
    ("rndv-contig", fun () -> bytes_path (128 * 1024) ());
    ("eager-generic", fun () -> typed_path ~count:64 ());
    ("rndv-generic", fun () -> typed_path ~count:4096 ());
    ("iov-custom", fun () -> custom_path 40000 ());
  ]

(* --- plan catalogue, in the --faults plan-string grammar --- *)

let plan_specs =
  [
    ("clean", "");
    ("drop", "drop=0.05,rto=5000");
    ("corrupt", "corrupt=0.05,rto=5000");
    ("dup", "dup=0.1");
    ("delay", "delay_p=0.2,delay=2000");
    ("flap", "flap=50000/5000");
    ("mixed", "drop=0.03,corrupt=0.02,dup=0.05,rto=5000");
  ]

let plan_of ~seed spec =
  let s =
    if spec = "" then Printf.sprintf "seed=%d" seed
    else Printf.sprintf "seed=%d,%s" seed spec
  in
  match Fault.of_string s with
  | Ok p -> p
  | Error e ->
      failf "plan %S: %s" s e;
      Fault.make ~seed ()

(* One cell: [iters] verified messages 0 -> 1 under one plan. *)
let run_cell ~plan ~path mk =
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let send_buf, recv_buf, verify = mk () in
  let damaged = ref 0 in
  (try
     Mpi.run w (fun comm ->
         if Mpi.rank comm = 0 then
           for i = 1 to iters do
             Mpi.send comm ~dst:1 ~tag:i (send_buf ())
           done
         else
           for i = 1 to iters do
             ignore (Mpi.recv comm ~source:0 ~tag:i (recv_buf ()));
             if not (verify ()) then incr damaged
           done)
   with e -> failf "%s: run raised %s" path (Printexc.to_string e));
  if !damaged > 0 then failf "%s: %d damaged payload(s)" path !damaged;
  Mpi.world_stats w

let () =
  (* Baseline: no plan attached at all must report zero reliability
     events and perform zero reliability work. *)
  List.iter
    (fun (path, mk) ->
      let w = Mpi.create_world ~size:2 () in
      let send_buf, recv_buf, verify = mk () in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then
            for i = 1 to iters do
              Mpi.send comm ~dst:1 ~tag:i (send_buf ())
            done
          else
            for i = 1 to iters do
              ignore (Mpi.recv comm ~source:0 ~tag:i (recv_buf ()));
              if not (verify ()) then failf "baseline %s: payload damaged" path
            done);
      let s = Mpi.world_stats w in
      if Stats.reliability_events s <> 0 then
        failf "baseline %s: %d reliability events without a fault plan" path
          (Stats.reliability_events s))
    paths;
  Printf.printf "baseline: zero reliability events on all %d paths\n\n"
    (List.length paths);
  Printf.printf "%-8s %-8s %-14s %6s %6s %6s %6s %6s %6s\n" "plan" "seed"
    "path" "retx" "drop" "corr" "dup" "flap" "fall";
  List.iter
    (fun (pname, spec) ->
      List.iter
        (fun seed ->
          let plan = plan_of ~seed spec in
          List.iter
            (fun (path, mk) ->
              let s = run_cell ~plan ~path mk in
              (* a clean plan attached engages the reliable protocol
                 (acks flow) but must do zero recovery work *)
              if
                pname = "clean"
                && Stats.reliability_events s <> s.Stats.acks
              then
                failf "clean plan %s seed %d: recovery work on a clean link"
                  path seed;
              Printf.printf "%-8s %-8d %-14s %6d %6d %6d %6d %6d %6d\n" pname
                seed path s.Stats.retransmits s.Stats.frags_dropped
                s.Stats.frags_corrupted s.Stats.frags_duplicated
                s.Stats.flap_waits s.Stats.iov_fallbacks)
            paths)
        seeds)
    plan_specs;
  Printf.printf "\n%s\n"
    (if !failures = 0 then "chaos sweep: all cells passed"
     else Printf.sprintf "chaos sweep: %d FAILURE(S)" !failures);
  exit (if !failures = 0 then 0 else 1)
