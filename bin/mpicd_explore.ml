(* mpicd-explore: systematic fault-space exploration CLI.

   Records a fault-free reference run of a workload, enumerates its
   injection points, searches schedules of up to k simultaneous faults
   (bounded-exhaustive with fingerprint pruning, or biased-random),
   shrinks any counterexample to a locally minimal fault plan, verifies
   byte-identical replay, and writes a repro.json artifact that
   `mpicd_chaos --replay` re-executes exactly.

   Exit codes: 0 = space swept clean (or self-check passed); 1 = a
   counterexample was found, shrunk, replayed and written; 2 = internal
   failure (reference run violating its oracle, diverging replay, or a
   failed self-check).

   --self-check re-seeds a historical comm_revoke regression behind
   Mpi.Mutation.revoke_oneshot and requires the explorer to find it,
   shrink it to at most 2 faults and replay it byte-identically — then
   repeats the same bounded-exhaustive sweep with the bug off and
   requires zero counterexamples.  This is the explorer's own test
   that it can still catch the class of bug it exists for.

   Run via `dune build @explore` (part of `dune runtest`). *)

module Fault = Mpicd_simnet.Fault
module Mpi = Mpicd.Mpi
module Explore = Mpicd_explore_lib.Explore
module Workloads = Mpicd_explore_lib.Workloads

let usage =
  "mpicd_explore [--workload NAME] [--k N] [--budget N] [--mode \
   exhaustive|random] [--seed N] [--kinds a,b,...] [--out FILE] [--list] \
   [--quiet] [--self-check]"

let workload = ref "revoke-rescue"
let k = ref 2
let budget = ref 400
let mode = ref Explore.Exhaustive
let seed = ref 1
let kinds = ref Explore.all_kinds
let out = ref "repro.json"
let quiet = ref false
let self_check = ref false
let list_workloads = ref false

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "mpicd_explore: %s\n" msg;
      exit 2)
    fmt

let set_mode = function
  | "exhaustive" -> mode := Explore.Exhaustive
  | "random" -> mode := Explore.Random
  | m -> die "unknown mode %S (want exhaustive or random)" m

let set_kinds s =
  kinds :=
    String.split_on_char ',' s
    |> List.map (fun name ->
           match Explore.kind_of_string (String.trim name) with
           | Some kd -> kd
           | None -> die "unknown fault kind %S" name)

let spec =
  [
    ("--workload", Arg.Set_string workload, "NAME workload to explore");
    ("--k", Arg.Set_int k, "N max simultaneous faults (default 2)");
    ("--budget", Arg.Set_int budget, "N max executions (default 400)");
    ("--mode", Arg.String set_mode, "M exhaustive (default) or random");
    ("--seed", Arg.Set_int seed, "N RNG seed for random mode (default 1)");
    ( "--kinds",
      Arg.String set_kinds,
      "K,K,... crash,drop,corrupt,partition,straggle (default all)" );
    ("--out", Arg.Set_string out, "FILE repro artifact path (default repro.json)");
    ("--list", Arg.Set list_workloads, " list workloads and exit");
    ("--quiet", Arg.Set quiet, " suppress progress output");
    ("--self-check", Arg.Set self_check, " run the seeded-mutation self-check");
  ]

let say fmt =
  Printf.ksprintf (fun msg -> if not !quiet then print_string msg) fmt

let get_workload name =
  match Workloads.find name with
  | Some wl -> wl
  | None ->
      die "unknown workload %S (have: %s)" name
        (String.concat ", "
           (List.map (fun w -> w.Workloads.wl_name) Workloads.all))

let sched_to_string sched =
  String.concat " + " (List.map Explore.fault_id sched)

let explore_once ~wl ~mutations =
  let tl = Explore.record wl in
  say "workload %s: %d injection points over [%.0f, %.0f] ns\n"
    wl.Workloads.wl_name
    (List.length tl.Explore.tl_points)
    tl.Explore.tl_t0 tl.Explore.tl_t1;
  let report =
    Explore.search ~k:!k ~budget:!budget ~kinds:!kinds ~mode:!mode ~seed:!seed
      wl tl
  in
  say "search: %d runs over %d points, %d fingerprint classes (%d pruned)%s\n"
    report.Explore.rp_runs report.Explore.rp_points report.Explore.rp_classes
    report.Explore.rp_pruned
    (if report.Explore.rp_truncated then ", budget exhausted (truncated)"
     else "");
  match report.Explore.rp_cexs with
  | [] ->
      say "no counterexamples: fault space clean at k=%d\n" !k;
      (report, None)
  | c :: _ as all ->
      say "%d counterexample(s); first: %s\n  %s\n" (List.length all)
        (sched_to_string c.Explore.cex_sched)
        (String.concat "\n  " c.Explore.cex_failures);
      let shrunk = Explore.shrink wl c in
      say "shrunk %d -> %d fault(s): %s\n"
        (List.length c.Explore.cex_sched)
        (List.length shrunk.Explore.cex_sched)
        (sched_to_string shrunk.Explore.cex_sched);
      (match Explore.replay wl shrunk.Explore.cex_plan with
      | Error e -> die "shrunk counterexample is not deterministic: %s" e
      | Ok res ->
          if res.Workloads.res_render <> shrunk.Explore.cex_render then
            die "shrunk counterexample render drifted between runs");
      let json = Explore.repro_to_json ~wl ~mutations shrunk in
      let oc = open_out !out in
      output_string oc json;
      close_out oc;
      say "replay verified byte-identical; wrote %s\n" !out;
      (report, Some shrunk)

let run_self_check () =
  let wl = get_workload "revoke-rescue" in
  (* phase 1: bug on — the explorer must find, shrink and replay it *)
  Mpi.Mutation.revoke_oneshot := true;
  say "self-check phase 1: revoke_oneshot mutation ON\n";
  let _, found = explore_once ~wl ~mutations:[ "revoke_oneshot" ] in
  (match found with
  | None ->
      die "self-check: seeded revoke_oneshot bug was NOT found (k=%d, \
           budget=%d)"
        !k !budget
  | Some c ->
      let n = List.length c.Explore.cex_sched in
      if n > 2 then
        die "self-check: shrunk counterexample has %d faults (want <= 2): %s" n
          (sched_to_string c.Explore.cex_sched);
      say "self-check: bug found and shrunk to %d fault(s)\n" n);
  (* phase 2: bug off — the identical sweep must come back clean *)
  Mpi.Mutation.revoke_oneshot := false;
  say "self-check phase 2: mutation OFF, same sweep must be clean\n";
  let _, found = explore_once ~wl ~mutations:[] in
  (match found with
  | Some c ->
      die "self-check: counterexample with mutation off: %s\n  %s"
        (sched_to_string c.Explore.cex_sched)
        (String.concat "\n  " c.Explore.cex_failures)
  | None -> ());
  say "self-check: PASS\n";
  exit 0

let () =
  Arg.parse spec
    (fun a -> die "unexpected argument %S" a)
    usage;
  if !list_workloads then begin
    List.iter
      (fun w ->
        Printf.printf "%-14s size=%d  %s\n" w.Workloads.wl_name
          w.Workloads.wl_size w.Workloads.wl_descr)
      Workloads.all;
    exit 0
  end;
  if !self_check then run_self_check ();
  let wl = get_workload !workload in
  match explore_once ~wl ~mutations:[] with
  | _, None -> exit 0
  | _, Some _ -> exit 1
