(* mpicd-profile: run one DDTBench kernel pingpong with the
   observability sink attached and run the Scalasca-style automatic
   trace analysis over it — wait-state classification, critical path,
   per-phase and per-datatype attribution, e.g.

     mpicd_profile NAS_MG_x
     mpicd_profile LAMMPS_full --method mpi-ddt --reps 8 --out profiles
     mpicd_profile NAS_MG_x --faults 'seed=3,drop=0.02' --top 3
     mpicd_profile NAS_MG_x --validate   # re-parse profile.json, check
                                         # schema + exact conservation *)

open Cmdliner
module H = Mpicd_harness.Harness
module Figures = Mpicd_figures
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel
module Obs = Mpicd_obs.Obs
module Export = Mpicd_obs.Export
module Profile = Mpicd_obs.Profile
module Json = Mpicd_obs.Json

let methods = [
  "reference"; "manual-pack"; "mpi-ddt"; "mpi-pack-ddt"; "custom-pack";
  "custom-regions";
]

let impl_of_method name k =
  match name with
  | "reference" -> Ok (Figures.Methods.k_reference k)
  | "manual-pack" -> Ok (Figures.Methods.k_manual k)
  | "mpi-ddt" -> Ok (Figures.Methods.k_ddt_direct k)
  | "mpi-pack-ddt" -> Ok (Figures.Methods.k_ddt_pack k)
  | "custom-pack" -> Ok (Figures.Methods.k_custom_pack k)
  | "custom-regions" -> (
      match Figures.Methods.k_custom_regions k () with
      | Some _ ->
          Ok (fun () -> Option.get (Figures.Methods.k_custom_regions k ()))
      | None -> Error "custom-regions is impracticable for this kernel")
  | m ->
      Error
        (Printf.sprintf "unknown method %S (one of: %s)" m
           (String.concat ", " methods))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sum_phases (pt : Profile.phase_totals) =
  List.fold_left Int64.add 0L
    [ pt.pack; pt.wire; pt.unpack; pt.wait; pt.callback; pt.other ]

let sum_waits (wt : Profile.wait_totals) =
  List.fold_left Int64.add 0L
    [
      wt.late_sender; wt.late_receiver; wt.barrier; wt.rndv_stall;
      wt.retransmit_stall; wt.wait_other;
    ]

(* The analyzer's central invariant, checked as Int64 equalities (no
   rounding slack): every rank's phases tile its window, wait classes
   tile the wait phase, and the critical path tiles the window. *)
let check_conservation (p : Profile.t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun (r : Profile.rank_profile) ->
      if sum_phases r.phases <> r.total_ps then
        err "rank %d: phases sum %Ld ps <> total %Ld ps" r.rank
          (sum_phases r.phases) r.total_ps;
      if sum_waits r.waits <> r.phases.wait then
        err "rank %d: wait classes sum %Ld ps <> wait phase %Ld ps" r.rank
          (sum_waits r.waits) r.phases.wait;
      if sum_waits r.cp_waits <> r.cp_phases.wait then
        err "rank %d: critical-path wait classes do not tile its wait phase"
          r.rank)
    p.ranks;
  let cp_total =
    List.fold_left
      (fun acc (r : Profile.rank_profile) ->
        Int64.add acc (sum_phases r.cp_phases))
      0L p.ranks
  in
  if p.ranks <> [] && cp_total <> p.window_ps then
    err "critical path sums to %Ld ps <> window %Ld ps" cp_total p.window_ps;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* Re-parse the emitted JSON and check the document shape. *)
let validate_json path (p : Profile.t) =
  let ( let* ) = Result.bind in
  let* j = Json.parse (read_file path) in
  let str m = Option.bind (Json.member m j) Json.to_string in
  let* () =
    match str "schema" with
    | Some "mpicd-profile/1" -> Ok ()
    | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
    | None -> Error "no schema member"
  in
  let* ranks =
    match Option.bind (Json.member "ranks" j) Json.to_list with
    | Some l -> Ok l
    | None -> Error "no ranks array"
  in
  let* () =
    if List.length ranks = List.length p.ranks then Ok ()
    else Error "ranks array length mismatch"
  in
  let* () =
    let missing =
      List.filter
        (fun m -> Json.member m j = None)
        [ "window_ns"; "critical_path"; "messages"; "datatypes" ]
    in
    if missing = [] then Ok ()
    else Error ("missing members: " ^ String.concat ", " missing)
  in
  let* () =
    match
      List.find_opt
        (fun r ->
          List.exists
            (fun m -> Json.member m r = None)
            [ "rank"; "total_ns"; "phases"; "waits"; "critical_path" ])
        ranks
    with
    | None -> Ok ()
    | Some _ -> Error "a rank object is missing members"
  in
  Ok (List.length ranks)

let run name meth reps faults out top validate quiet =
  (match Registry.find name with
  | None ->
      Printf.eprintf "unknown kernel %S (try `mpicd_bench list`)\n" name;
      exit 2
  | Some (module K : Kernel.KERNEL) -> (
      match impl_of_method meth (module K : Kernel.KERNEL) with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
      | Ok make ->
          (try Sys.mkdir out 0o755 with Sys_error _ -> ());
          let r, p = H.pingpong_profiled ~reps ?faults ~bytes:K.wire_bytes make in
          let path suffix = Filename.concat out (name ^ suffix) in
          let json_path = path ".profile.json" in
          Export.write_file json_path (Profile.to_json p);
          Export.write_file (path ".profile.txt") (Profile.report ~top p);
          Export.write_file (path ".profile.folded") (Profile.folded p);
          if not quiet then begin
            Printf.printf "kernel %s (%s): latency %.2f us, bandwidth %.0f MiB/s\n"
              K.name meth r.H.latency_us r.H.bandwidth_mib_s;
            Printf.printf "pack share %.1f%%, wait share %.1f%%\n\n"
              (100. *. Profile.pack_share p)
              (100. *. Profile.wait_share p);
            print_string (Profile.report ~top p);
            Printf.printf "\nwrote %s\n" json_path
          end;
          if validate then begin
            (match check_conservation p with
            | Ok () -> ()
            | Error msg ->
                Printf.eprintf "validate: conservation: %s\n" msg;
                exit 1);
            match validate_json json_path p with
            | Ok nranks ->
                if not quiet then
                  Printf.printf
                    "validate: ok (conservation exact, %d rank objects)\n"
                    nranks
            | Error msg ->
                Printf.eprintf "validate: %s: %s\n" json_path msg;
                exit 1
          end));
  ()

let faults_term =
  let fault_conv =
    let parse s =
      match Mpicd_simnet.Fault.of_string s with
      | Ok pl -> `Ok pl
      | Error msg -> `Error msg
    in
    (parse, Mpicd_simnet.Fault.pp)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject faults from $(docv); the profile then shows the \
           retransmit/backoff stalls the recovery created.")

let cmd =
  let kernel_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"DDTBench kernel name (see `mpicd_bench list`).")
  in
  let method_arg =
    Arg.(
      value
      & opt string "custom-pack"
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            (Printf.sprintf "Transfer method to profile (one of: %s)."
               (String.concat ", " methods)))
  in
  let reps_arg =
    Arg.(value & opt int 4 & info [ "reps" ] ~docv:"N" ~doc:"Measured rounds.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"Datatypes listed in the report.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check the Int64 conservation invariants (phases tile each \
             rank's window, critical path tiles the window) and re-parse \
             the emitted profile.json against its schema.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only write files.")
  in
  let doc =
    "Wait-state and critical-path profile of one DDTBench kernel run."
  in
  Cmd.v
    (Cmd.info "mpicd_profile" ~doc)
    Term.(
      const run $ kernel_arg $ method_arg $ reps_arg $ faults_term $ out_arg
      $ top_arg $ validate_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
