(* mpicd-check: static & dynamic analysis front end.

   Runs the five Mpicd_check analyzers —

     1. datatype lint over the DDTBench registry and example-shaped
        derived datatypes,
     2. the performance-guideline checker (normalize + verify + cost
        compare) over the same datatypes,
     3. the custom-callback contract checker over every registry
        kernel's pack and region callback sets,
     4. communication matching over monitored example scenarios,
     5. wait-for-graph deadlock analysis (exercised on the same runs),

   then writes text and JSON reports under --out (default results/):
   check_report.{txt,json} plus guidelines_report.json, the
   guideline-sweep sections alone (the CI artifact).
   Exit status is nonzero iff any Error/Warning finding was produced;
   hints (normalization opportunities) are reported but never fail.

     dune exec bin/mpicd_check.exe -- --out results *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module Check = Mpicd_check_lib

let out_dir = ref "results"
let seed = ref 0x5eed
let rounds = ref 8
let quiet = ref false
let gl_threshold = ref Mpicd_check_lib.Guideline.default_threshold_ns

let speclist =
  [
    ("--out", Arg.Set_string out_dir, "DIR  report directory (default results)");
    ("--seed", Arg.Set_int seed, "N  fragment-fuzz seed (default 0x5eed)");
    ("--rounds", Arg.Set_int rounds, "N  fuzz rounds per callback set (default 8)");
    ( "--gl-threshold-ns",
      Arg.Set_float gl_threshold,
      "NS  guideline violation threshold (default 500)" );
    ("--quiet", Arg.Set quiet, "  only print the summary line");
  ]

let usage =
  "mpicd_check [--out DIR] [--seed N] [--rounds N] [--gl-threshold-ns NS] \
   [--quiet]"

(* --- example-shaped derived datatypes for the lint --- *)

let example_datatypes =
  let halo_column =
    (* examples/halo_exchange.ml: one ghost column of a 66x66 tile *)
    Dt.vector ~count:64 ~blocklength:1 ~stride:66 Dt.float64
  in
  let spmv_rows =
    (* examples/sparse_spmv.ml-shaped: irregular row fragments *)
    Dt.hindexed
      ~blocklengths:[| 3; 1; 4; 2 |]
      ~displacements_bytes:[| 0; 40; 64; 120 |]
      Dt.float64
  in
  let particle =
    (* examples/particle_exchange.ml-shaped: id + coordinates *)
    Dt.struct_
      ~blocklengths:[| 1; 3 |]
      ~displacements_bytes:[| 0; 8 |]
      ~types:[| Dt.int32; Dt.float64 |]
  in
  [
    ("examples/halo_column", halo_column);
    ("examples/spmv_rows", spmv_rows);
    ("examples/particle", particle);
  ]

(* --- monitored communication scenarios (all expected clean) --- *)

let ring_scenario comm =
  (* nonblocking typed ring shift, examples/quickstart-shaped *)
  let me = Mpi.rank comm and n = Mpi.size comm in
  let dt = Dt.contiguous 16 Dt.float64 in
  let send = Buf.create (16 * 8) and recv = Buf.create (16 * 8) in
  let rs =
    Mpi.isend comm ~dst:((me + 1) mod n) ~tag:7
      (Mpi.Typed { dt; count = 1; base = send })
  in
  let rr =
    Mpi.irecv comm ~source:((me + n - 1) mod n) ~tag:7
      (Mpi.Typed { dt; count = 1; base = recv })
  in
  ignore (Mpi.waitall [ rs; rr ])

let halo_scenario comm =
  (* two ranks trade strided columns, examples/halo_exchange-shaped *)
  let me = Mpi.rank comm in
  let peer = 1 - me in
  let dt = Dt.vector ~count:8 ~blocklength:1 ~stride:10 Dt.float64 in
  let tile = Buf.create (10 * 10 * 8) and ghost = Buf.create (10 * 10 * 8) in
  let r =
    Mpi.irecv comm ~source:peer ~tag:1 (Mpi.Typed { dt; count = 1; base = ghost })
  in
  Mpi.send comm ~dst:peer ~tag:1 (Mpi.Typed { dt; count = 1; base = tile });
  ignore (Mpi.wait r)

let mixed_protocol_scenario comm =
  (* one eager-sized and one rendezvous-sized message per direction,
     wildcard receives: exercises both protocol paths under the monitor *)
  let me = Mpi.rank comm in
  let peer = 1 - me in
  let small = Buf.create 64 and big = Buf.create (256 * 1024) in
  let r1 = Mpi.irecv comm ~tag:1 (Mpi.Bytes (Buf.create 64)) in
  let r2 =
    Mpi.irecv comm ~tag:2
      (Mpi.Typed { dt = Dt.byte; count = 256 * 1024; base = Buf.create (256 * 1024) })
  in
  Mpi.send comm ~dst:peer ~tag:1 (Mpi.Bytes small);
  Mpi.send comm ~dst:peer ~tag:2
    (Mpi.Typed { dt = Dt.byte; count = 256 * 1024; base = big });
  ignore (Mpi.waitall [ r1; r2 ])

let scenarios =
  [
    ("scenario/ring", 4, ring_scenario);
    ("scenario/halo", 2, halo_scenario);
    ("scenario/mixed-protocol", 2, mixed_protocol_scenario);
  ]

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let guideline_sections =
    [
      Check.Report.section "performance guidelines: ddtbench registry"
        (Check.Registry_check.guideline_kernels ~threshold_ns:!gl_threshold ());
      Check.Report.section "performance guidelines: examples"
        (List.concat_map
           (fun (subject, dt) ->
             Check.Guideline.check ~threshold_ns:!gl_threshold ~subject dt)
           example_datatypes);
    ]
  in
  let sections =
    [
      Check.Report.section "datatype lint: ddtbench registry"
        (Check.Registry_check.lint_kernels ());
      Check.Report.section "datatype lint: examples"
        (List.concat_map
           (fun (subject, dt) -> Check.Dt_lint.lint ~subject dt)
           example_datatypes);
    ]
    @ guideline_sections
    @ [
        Check.Report.section "callback contract: ddtbench registry"
          (Check.Registry_check.contract_kernels ~seed:!seed ~rounds:!rounds ());
      ]
    @ List.map
        (fun (subject, size, f) ->
          let r = Check.Matchcheck.run ~subject ~size f in
          let notes =
            ("deadlocked", string_of_bool r.Check.Matchcheck.deadlocked)
            :: List.map
                 (fun (k, v) -> (k, string_of_int v))
                 r.Check.Matchcheck.trace_counts
          in
          Check.Report.section ~notes
            ("communication match: " ^ subject)
            r.Check.Matchcheck.findings)
        scenarios
  in
  let text = Check.Report.render_text sections in
  let json = Check.Report.render_json sections in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      let parent = Filename.dirname d in
      if parent <> d then mkdirs parent;
      Sys.mkdir d 0o755
    end
  in
  mkdirs !out_dir;
  let write name contents =
    let oc = open_out (Filename.concat !out_dir name) in
    output_string oc contents;
    close_out oc
  in
  write "check_report.txt" text;
  write "check_report.json" json;
  write "guidelines_report.json" (Check.Report.render_json guideline_sections);
  if !quiet then print_endline (Check.Report.summary_line sections)
  else print_string text;
  Printf.printf "reports: %s/check_report.{txt,json}\n" !out_dir;
  if Check.Report.problem_count sections > 0 then exit 1
