(* mpicd-bench: command-line front end for the reproduction benchmarks.

   Unlike bench/main.exe (which regenerates the paper's artifacts with
   the calibrated default cost model), this CLI also exposes the
   cost-model parameters for per-kernel what-if runs, e.g.

     mpicd_bench list
     mpicd_bench figure fig7 --csv results
     mpicd_bench kernel NAS_MG_x --iov-entry-ns 40 --eager-limit 16384 *)

open Cmdliner
module Config = Mpicd_simnet.Config
module Topology = Mpicd_simnet.Topology
module Report = Mpicd_harness.Report
module H = Mpicd_harness.Harness
module Figures = Mpicd_figures
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel

let all_series_figures =
  Figures.Fig_rust.all @ Figures.Fig_python.all @ Figures.Ablations.all

(* --- cost-model flags --- *)

let config_term =
  let eager =
    Arg.(
      value
      & opt int Config.default.link.eager_limit
      & info [ "eager-limit" ] ~docv:"BYTES"
          ~doc:"Eager/rendezvous protocol switch point.")
  in
  let iov =
    Arg.(
      value
      & opt float Config.default.link.iov_entry_ns
      & info [ "iov-entry-ns" ] ~docv:"NS"
          ~doc:"Per-scatter/gather-entry cost of the iov path.")
  in
  let ddt =
    Arg.(
      value
      & opt float Config.default.cpu.ddt_block_ns
      & info [ "ddt-block-ns" ] ~docv:"NS"
          ~doc:"Per-typemap-block cost of the classic datatype engine.")
  in
  let latency =
    Arg.(
      value
      & opt float Config.default.link.latency_ns
      & info [ "latency-ns" ] ~docv:"NS" ~doc:"One-way link latency.")
  in
  let bw =
    Arg.(
      value
      & opt float Config.default.link.ns_per_byte
      & info [ "ns-per-byte" ] ~docv:"NS" ~doc:"Inverse link bandwidth.")
  in
  let make eager_limit iov_entry_ns ddt_block_ns latency_ns ns_per_byte =
    {
      Config.default with
      link =
        {
          Config.default.link with
          eager_limit;
          iov_entry_ns;
          latency_ns;
          ns_per_byte;
        };
      cpu = { Config.default.cpu with ddt_block_ns };
    }
  in
  Term.(const make $ eager $ iov $ ddt $ latency $ bw)

let faults_term =
  let fault_conv =
    let parse s =
      match Mpicd_simnet.Fault.of_string s with
      | Ok p -> `Ok p
      | Error msg -> `Error msg
    in
    (parse, Mpicd_simnet.Fault.pp)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject faults from $(docv) (e.g. 'seed=3,drop=0.02,corrupt=0.01'); \
           measurements then include the reliable-delivery recovery cost. \
           See docs/FAULTS.md for the plan grammar.")

(* The figure generators bake in Config.default; for the CLI we re-run
   single kernels/methods under the chosen config instead. *)

let list_cmd =
  let run () =
    print_endline "figures / tables:";
    print_endline "  table1";
    List.iter (fun (k, title, _, _) -> Printf.printf "  %-18s %s\n" k title)
      all_series_figures;
    print_endline "  fig10";
    print_endline "  fig10-extras";
    print_endline "  ablation-objmsg";
    print_endline "  ablation-threads";
    print_endline "  ablation-device";
    print_endline "  ablation-profile";
    print_endline "";
    print_endline "kernels (for `mpicd_bench kernel`):";
    List.iter
      (fun (module K : Kernel.KERNEL) ->
        Printf.printf "  %-18s %7s wire, %s\n" K.name
          (Report.human_bytes K.wire_bytes)
          K.datatypes_desc)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available figures and kernels.")
    Term.(const run $ const ())

let figure_cmd =
  let key =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"Figure key (see `mpicd_bench list`).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write CSV output into $(docv).")
  in
  let run key csv_dir =
    (match csv_dir with
    | Some dir -> (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
    | None -> ());
    match key with
    | "table1" -> Figures.Fig_ddtbench.print_table1 ()
    | "fig10" ->
        Figures.Fig_ddtbench.print_fig10 ();
        Option.iter
          (fun dir ->
            Figures.Fig_ddtbench.fig10_csv
              ~path:(Filename.concat dir "fig10.csv") ())
          csv_dir
    | "fig10-extras" ->
        Figures.Fig_ddtbench.print_fig10 ~kernels:Registry.extra_kernels ()
    | "ablation-objmsg" -> Figures.Ablations.print_objmsg_costs ()
    | "ablation-threads" -> Figures.Ablations.print_threading ()
    | "ablation-device" -> Figures.Ablations.print_device ()
    | "ablation-profile" -> Figures.Ablations.print_profile_shares ()
    | key -> (
        match List.find_opt (fun (k, _, _, _) -> k = key) all_series_figures with
        | Some (key, title, ylabel, f) ->
            let series = f () in
            Report.print ~ylabel ~title ~xlabel:"size" series;
            Option.iter
              (fun dir ->
                Report.to_csv
                  ~path:(Filename.concat dir (key ^ ".csv"))
                  ~xlabel:"size" series)
              csv_dir
        | None ->
            Printf.eprintf "unknown figure %S (try `mpicd_bench list`)\n" key;
            exit 2)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one figure/table of the paper.")
    Term.(const run $ key $ csv)

let kernel_cmd =
  let kernel_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"DDTBench kernel name.")
  in
  let reps_arg =
    Arg.(value & opt int 4 & info [ "reps" ] ~docv:"N" ~doc:"Measured rounds.")
  in
  let run config name reps faults =
    match Registry.find name with
    | None ->
        Printf.eprintf "unknown kernel %S (try `mpicd_bench list`)\n" name;
        exit 2
    | Some (module K : Kernel.KERNEL) ->
        let k = (module K : Kernel.KERNEL) in
        let rel = Mpicd_simnet.Stats.create () in
        let bw make =
          let r = H.pingpong ~config ~reps ?faults ~bytes:K.wire_bytes make in
          let s = r.H.stats in
          rel.retransmits <- rel.retransmits + s.retransmits;
          rel.frags_dropped <- rel.frags_dropped + s.frags_dropped;
          rel.frags_corrupted <- rel.frags_corrupted + s.frags_corrupted;
          rel.frags_duplicated <- rel.frags_duplicated + s.frags_duplicated;
          rel.iov_fallbacks <- rel.iov_fallbacks + s.iov_fallbacks;
          rel.flap_waits <- rel.flap_waits + s.flap_waits;
          r.H.bandwidth_mib_s
        in
        Format.printf "kernel %s: %s wire bytes, %d blocks@."
          K.name
          (Report.human_bytes K.wire_bytes)
          (Mpicd_ddtbench.Blocks.count K.blocks);
        Format.printf "cost model: %a@.@." Config.pp config;
        let rows =
          [
            ("reference", Some (bw (Figures.Methods.k_reference k)));
            ("manual-pack", Some (bw (Figures.Methods.k_manual k)));
            ("mpi-ddt", Some (bw (Figures.Methods.k_ddt_direct k)));
            ("mpi-pack-ddt", Some (bw (Figures.Methods.k_ddt_pack k)));
            ("custom-pack", Some (bw (Figures.Methods.k_custom_pack k)));
            ( "custom-regions",
              match Figures.Methods.k_custom_regions k () with
              | None -> None
              | Some _ ->
                  Some
                    (bw (fun () ->
                         Option.get (Figures.Methods.k_custom_regions k ()))) );
          ]
        in
        Report.print_kv_table
          ~title:(Printf.sprintf "%s bandwidth (MiB/s)" K.name)
          ~header:[ "method"; "MiB/s" ]
          (List.map
             (fun (m, bw) ->
               [ m; (match bw with None -> "-" | Some b -> Printf.sprintf "%.0f" b) ])
             rows);
        (* A fault-free baseline must report zero retransmits; with
           --faults this summarizes the recovery work across methods. *)
        Format.printf
          "@.reliability: retransmits=%d drops=%d corrupt=%d dups=%d \
           iov_fallbacks=%d flap_waits=%d@."
          rel.retransmits rel.frags_dropped rel.frags_corrupted
          rel.frags_duplicated rel.iov_fallbacks rel.flap_waits
  in
  Cmd.v
    (Cmd.info "kernel"
       ~doc:"Run one DDTBench kernel under a configurable cost model.")
    Term.(const run $ config_term $ kernel_arg $ reps_arg $ faults_term)

let scale_cmd =
  let ranks_arg =
    Arg.(
      value & opt int 1024
      & info [ "ranks" ] ~docv:"N" ~doc:"Communicator size.")
  in
  let topology_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ] ~docv:"KIND"
          ~doc:
            "Network model: $(b,switch), $(b,fattree) or $(b,dragonfly) \
             (default: the flat infinitely-switched wire).")
  in
  let iters_arg =
    Arg.(
      value & opt int 2
      & info [ "iters" ] ~docv:"N" ~doc:"Allreduce rounds to run.")
  in
  let elems_arg =
    Arg.(
      value & opt int 8
      & info [ "elems" ] ~docv:"N" ~doc:"float64 elements per rank.")
  in
  let run config ranks topology iters elems =
    if ranks < 1 then begin
      Printf.eprintf "mpicd_bench scale: --ranks must be >= 1\n";
      exit 2
    end;
    let topo =
      match topology with
      | None -> None
      | Some s -> (
          try Some (Topology.of_string s ~nranks:ranks)
          with Invalid_argument msg ->
            Printf.eprintf "mpicd_bench scale: %s\n" msg;
            exit 2)
    in
    let t0 = Unix.gettimeofday () in
    let r = H.scale_allreduce ~config ?topology:topo ~iters ~elems ~ranks () in
    let wall_s = Unix.gettimeofday () -. t0 in
    Report.print_kv_table
      ~title:
        (Printf.sprintf "%d-rank allreduce x%d over %s" ranks iters r.H.topology)
      ~header:[ "metric"; "value" ]
      [
        [ "virtual time (ms)"; Printf.sprintf "%.3f" (r.H.sim_time_ns /. 1e6) ];
        [ "events scheduled"; string_of_int r.H.events ];
        [ "events pooled"; string_of_int r.H.pooled ];
        [ "peak live events"; string_of_int r.H.max_live ];
        [ "congestion events"; string_of_int r.H.congestion_events ];
        [
          "congestion wait (ms)";
          Printf.sprintf "%.3f" (r.H.congestion_wait_ns /. 1e6);
        ];
        [
          "wall events/sec";
          (if wall_s > 0. then
             Printf.sprintf "%.0f" (float_of_int r.H.events /. wall_s)
           else "-");
        ];
        [ "checksum"; Printf.sprintf "%.1f" r.H.checksum ];
      ]
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run a large-communicator allreduce over a modeled network topology.")
    Term.(const run $ config_term $ ranks_arg $ topology_arg $ iters_arg
          $ elems_arg)

let () =
  let doc = "mpicd reproduction benchmarks" in
  let info = Cmd.info "mpicd_bench" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; figure_cmd; kernel_cmd; scale_cmd ]))
